"""Content-addressed persistence of ADD power models.

The paper's economics only work if a model is *built once* and reused for
arbitrarily many queries; :class:`ModelStore` makes that literal.  Every
model is cached on disk under a key derived from *content*, not names:

    key = sha256( canonical netlist structure , canonical build config )

so a structurally identical netlist — whatever file, generator or process
it came from — resolves to the same cached model, while any change to the
circuit or to the build parameters (``max_nodes``, ``strategy``, ...)
produces a different key and therefore a fresh build.

Layout of a store directory::

    <root>/objects/<key>.json   # one store entry per model (atomic writes)
    <root>/manifest.json        # metadata cache, rebuildable from objects/

The ``objects/`` directory is the source of truth.  The manifest is a
pure metadata cache (macro name, sizes, timestamps) kept for cheap
``ls``/``gc``; it is rewritten atomically after every mutation and, if it
is ever missing, corrupt, or lost an entry to a concurrent writer, it is
reconciled against ``objects/`` on the next load — so ``ls``/``gc`` are
best-effort views that may briefly lag the object files, never the other
way around.  All file creation goes through write-to-temp +
:func:`os.replace`, so concurrent processes sharing one store directory
never observe partial entries — the worst case under a build race is
that both processes build and one atomic replace wins.  An object file
written by a *different store version* (a newer build sharing the
directory) is left untouched and simply skipped by this build.

On top of the disk layer sits a per-process LRU of deserialised models
bounded by an *approximate* byte budget (the serialised payload size is
used as the estimate), so a server process keeps its hot models resident
without unbounded growth.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ModelError
from repro.models.addmodel import (
    AddPowerModel,
    BuildJob,
    build_add_model,
    build_add_models_parallel,
)
from repro.models.serialize import model_from_dict, model_to_dict
from repro.netlist.netlist import Netlist
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.testing import faults

ENTRY_FORMAT = "repro-model-store-entry"
MANIFEST_FORMAT = "repro-model-store-manifest"
STORE_VERSION = 1

#: Default in-memory budget: enough for a few hundred budget-sized
#: (MAX=1000) models, small next to a typical server's footprint.
DEFAULT_MEMORY_BUDGET_BYTES = 128 * 1024 * 1024

_MET = get_metrics()
_HITS = _MET.counter("serve.store.hits")
_MISSES = _MET.counter("serve.store.misses")
_MEMORY_HITS = _MET.counter("serve.store.memory_hits")
_DISK_HITS = _MET.counter("serve.store.disk_hits")
_BUILDS = _MET.counter("serve.store.builds")
_EVICTIONS = _MET.counter("serve.store.lru_evictions")
_CORRUPT = _MET.counter("serve.store.corrupt_entries")
_VERSION_SKIPS = _MET.counter("serve.store.version_skips")
_GC_REMOVED = _MET.counter("serve.store.gc_removed")
_IO_RETRIES = _MET.counter("serve.store.io_retries")
_IO_FAILURES = _MET.counter("serve.store.io_failures")
_MANIFEST_RECOVERIES = _MET.counter("serve.store.manifest_recoveries")


def _builder_defaults() -> Dict:
    """``build_add_model``'s keyword defaults, read off its signature.

    Derived programmatically so the canonical config can never drift
    from what a bare ``build_add_model(netlist)`` actually builds — a
    drift would alias two *different* builds onto one store key and
    silently serve whichever was cached first.
    """
    return {
        name: parameter.default
        for name, parameter in inspect.signature(
            build_add_model
        ).parameters.items()
        if parameter.default is not inspect.Parameter.empty
    }


_BUILD_DEFAULTS = _builder_defaults()


def canonical_build_config(config: Dict) -> Dict:
    """Normalise ``build_add_model`` keyword arguments for hashing.

    Fills in the builder's own signature defaults so ``{}`` and an
    explicit ``{"max_nodes": None}``-style spelling of the same build
    hash identically, and sorts any explicit input order into a
    reproducible JSON shape.
    """
    known = dict(_BUILD_DEFAULTS)
    unknown = sorted(set(config) - set(known))
    if unknown:
        raise ModelError(
            f"unknown build config key(s) for the model store: {unknown}"
        )
    merged = dict(known)
    merged.update(config)
    if merged["input_order"] is not None:
        merged["input_order"] = list(merged["input_order"])
    return merged


def store_key(netlist: Netlist, config: Dict) -> str:
    """Content-addressed cache key for (netlist, build config)."""
    blob = json.dumps(
        {
            "netlist": netlist.canonical_dict(),
            "config": canonical_build_config(config),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StoreEntry:
    """Manifest metadata for one cached model."""

    key: str
    macro_name: str
    strategy: str
    max_nodes: Optional[int]
    nodes: int
    payload_bytes: int
    netlist_sha256: str
    created_at: float

    def to_dict(self) -> Dict:
        return {
            "key": self.key,
            "macro_name": self.macro_name,
            "strategy": self.strategy,
            "max_nodes": self.max_nodes,
            "nodes": self.nodes,
            "payload_bytes": self.payload_bytes,
            "netlist_sha256": self.netlist_sha256,
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, raw: Dict) -> "StoreEntry":
        return cls(
            key=raw["key"],
            macro_name=raw["macro_name"],
            strategy=raw["strategy"],
            max_nodes=raw["max_nodes"],
            nodes=raw["nodes"],
            payload_bytes=raw["payload_bytes"],
            netlist_sha256=raw["netlist_sha256"],
            created_at=raw["created_at"],
        )


def _encode_json(payload: Dict) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write via temp file + rename, so readers never see partial files."""
    faults.maybe_fail("store.io.write")
    spec = faults.check("store.torn_write")
    if spec is not None:
        # Chaos hook: simulate a crashed writer that bypassed the atomic
        # rename — a truncated file appears at the *final* path, exactly
        # what quarantine/reconciliation must absorb.
        path.write_bytes(data[: max(1, len(data) // 2)])
        return
    handle, temp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(data)
        os.replace(temp, path)
    except BaseException:
        try:
            os.unlink(temp)
        except OSError:
            pass
        raise


def _atomic_write_json(path: Path, payload: Dict) -> int:
    """Write JSON via temp file + rename; returns the byte size written."""
    data = _encode_json(payload)
    _retry_io(lambda: _atomic_write_bytes(path, data))
    return len(data)


def _retry_io(
    operation: Callable[[], object],
    attempts: int = 3,
    base_delay_s: float = 0.01,
):
    """Run a filesystem operation, retrying transient OSErrors.

    A store shared over NFS (or hammered by an antivirus scanner) sees
    sporadic EIO/EAGAIN-style failures that succeed moments later; one
    bounded retry loop covers every store read and write.  A
    FileNotFoundError is *not* transient — it propagates immediately so
    miss detection stays exact.
    """
    last: Optional[OSError] = None
    for attempt in range(attempts):
        if attempt:
            _IO_RETRIES.inc()
            time.sleep(base_delay_s * (2 ** (attempt - 1)))
        try:
            return operation()
        except FileNotFoundError:
            raise
        except OSError as exc:
            last = exc
    assert last is not None
    raise last


class ModelStore:
    """Content-addressed on-disk + in-memory cache of ADD power models."""

    def __init__(
        self,
        root: str | Path,
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES,
    ):
        if memory_budget_bytes < 0:
            raise ModelError("memory_budget_bytes must be >= 0")
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.manifest_path = self.root / "manifest.json"
        self.memory_budget_bytes = memory_budget_bytes
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        # key -> (model, approximate byte cost); most recently used last.
        self._lru: "OrderedDict[str, Tuple[AddPowerModel, int]]" = OrderedDict()
        self._lru_bytes = 0
        # Guards the LRU against concurrent get_or_build callers (e.g.
        # a server thread racing a prefetch thread).
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    def key_for(self, netlist: Netlist, **build_kwargs) -> str:
        """The store key this netlist + build config resolves to."""
        return store_key(netlist, build_kwargs)

    def _object_path(self, key: str) -> Path:
        if not key or any(ch not in "0123456789abcdef" for ch in key):
            raise ModelError(f"malformed store key {key!r}")
        return self.objects_dir / f"{key}.json"

    # ------------------------------------------------------------------
    # In-memory LRU
    # ------------------------------------------------------------------
    def _lru_get(self, key: str) -> Optional[AddPowerModel]:
        with self._lock:
            hit = self._lru.get(key)
            if hit is None:
                return None
            self._lru.move_to_end(key)
            return hit[0]

    def _lru_put(self, key: str, model: AddPowerModel, cost: int) -> None:
        with self._lock:
            if key in self._lru:
                self._lru_bytes -= self._lru.pop(key)[1]
            self._lru[key] = (model, cost)
            self._lru_bytes += cost
            # Evict least-recently-used entries down to the budget, but
            # never the entry just inserted (a single over-budget model
            # stays resident rather than thrashing on every call).
            while (
                self._lru_bytes > self.memory_budget_bytes
                and len(self._lru) > 1
            ):
                _, (_, evicted_cost) = self._lru.popitem(last=False)
                self._lru_bytes -= evicted_cost
                _EVICTIONS.inc()

    @property
    def memory_bytes(self) -> int:
        """Approximate bytes currently pinned by the in-memory LRU."""
        return self._lru_bytes

    @property
    def memory_entries(self) -> int:
        """Number of models resident in the in-memory LRU."""
        return len(self._lru)

    # ------------------------------------------------------------------
    # Disk layer
    # ------------------------------------------------------------------
    def _read_entry(self, key: str) -> Optional[Tuple[AddPowerModel, int]]:
        """Load one object file; quarantines corrupt entries.

        Returns ``(model, payload_bytes)`` or None when the entry is
        absent or unreadable.  A corrupt file (truncated write from a
        crashed process, bit rot, a payload that won't decode) is
        deleted so the caller falls through to a rebuild instead of
        failing forever.  An entry whose *store version* differs — e.g.
        written by a newer build sharing this directory — is not ours to
        judge: it is skipped without touching the file, and this build
        simply rebuilds in its own format.
        """
        path = self._object_path(key)

        def read() -> bytes:
            faults.maybe_fail("store.io.read")
            return path.read_bytes()

        try:
            data = _retry_io(read)
        except FileNotFoundError:
            return None
        except OSError:
            # Persistently unreadable (disk trouble, not absence): treat
            # as a miss so the caller rebuilds; the file stays for later.
            _IO_FAILURES.inc()
            return None
        try:
            raw = json.loads(data)
            if not isinstance(raw, dict) or raw.get("format") != ENTRY_FORMAT:
                raise ModelError(f"not a {ENTRY_FORMAT} payload")
            if raw.get("version") != STORE_VERSION:
                _VERSION_SKIPS.inc()
                return None
            model = model_from_dict(raw["model"])
        except Exception:  # noqa: BLE001 - any undecodable entry is corrupt
            _CORRUPT.inc()
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing unlink
                pass
            self._drop_manifest_entries([key])
            return None
        return model, len(data)

    def _read_entry_meta(self, key: str) -> Optional[StoreEntry]:
        """Manifest metadata for one object file, without rebuilding the ADD.

        Used by manifest reconciliation, which must stay cheap: ``ls``,
        ``gc`` and every ``put`` may scan entries another process wrote,
        and deserialising whole models there would make bulk inserts
        quadratic.  Unreadable or foreign-version files simply yield
        None (no quarantine here — that happens on the ``get`` path).
        """
        path = self._object_path(key)
        try:
            data = path.read_bytes()
            raw = json.loads(data)
            if not isinstance(raw, dict) or raw.get("format") != ENTRY_FORMAT:
                return None
            if raw.get("version") != STORE_VERSION:
                return None
            payload = raw["model"]
            config = raw.get("config") or {}
            return StoreEntry(
                key=key,
                macro_name=str(payload["macro_name"]),
                strategy=str(payload["strategy"]),
                max_nodes=config.get("max_nodes"),
                nodes=len(payload["nodes"]),
                payload_bytes=len(data),
                netlist_sha256=payload.get("source_netlist_sha256") or "",
                created_at=path.stat().st_mtime,
            )
        except Exception:  # noqa: BLE001 - reconciliation is best-effort
            return None

    def _write_entry(
        self, key: str, model: AddPowerModel, config: Dict
    ) -> StoreEntry:
        payload = {
            "format": ENTRY_FORMAT,
            "version": STORE_VERSION,
            "key": key,
            "config": canonical_build_config(config),
            "model": model_to_dict(model),
        }
        data = _encode_json(payload)
        size = len(data)
        try:
            _retry_io(lambda: _atomic_write_bytes(self._object_path(key), data))
        except OSError:
            # Persisting is best-effort: the model is still valid and
            # stays resident in memory; only its disk copy is missing.
            _IO_FAILURES.inc()
        entry = StoreEntry(
            key=key,
            macro_name=model.macro_name,
            strategy=model.strategy,
            max_nodes=canonical_build_config(config)["max_nodes"],
            nodes=model.size,
            payload_bytes=size,
            netlist_sha256=model.source_hash or "",
            created_at=time.time(),
        )
        self._update_manifest({key: entry})
        return entry

    # ------------------------------------------------------------------
    # Manifest (metadata cache; objects/ is the source of truth)
    # ------------------------------------------------------------------
    def _load_manifest(self) -> Dict[str, StoreEntry]:
        present = False
        try:
            blob = _retry_io(
                lambda: self.manifest_path.read_text(encoding="utf-8")
            )
            present = True
            raw = json.loads(blob)
            if raw.get("format") != MANIFEST_FORMAT:
                raise ValueError("wrong manifest format")
            entries = {
                key: StoreEntry.from_dict(value)
                for key, value in raw.get("entries", {}).items()
            }
        except (OSError, ValueError, KeyError, TypeError):
            if present:
                # A manifest file exists but would not parse — a torn
                # write.  Reconciliation below rebuilds it from objects/.
                _MANIFEST_RECOVERIES.inc()
            entries = {}
        # Reconcile with the objects directory: drop stale records, pick
        # up files another process wrote.  Metadata comes straight from
        # the entry JSON (no model reconstruction), so reconciliation
        # stays cheap even when many foreign files appear at once.
        on_disk = {path.stem for path in self.objects_dir.glob("*.json")}
        entries = {k: v for k, v in entries.items() if k in on_disk}
        for key in on_disk - set(entries):
            meta = self._read_entry_meta(key)
            if meta is not None:
                entries[key] = meta
        return entries

    def _write_manifest(self, entries: Dict[str, StoreEntry]) -> None:
        try:
            _atomic_write_json(
                self.manifest_path,
                {
                    "format": MANIFEST_FORMAT,
                    "version": STORE_VERSION,
                    "entries": {k: v.to_dict() for k, v in entries.items()},
                },
            )
        except OSError:
            # The manifest is a rebuildable metadata cache; a failed
            # rewrite must never fail the put/remove that triggered it.
            _IO_FAILURES.inc()

    def _update_manifest(self, new_entries: Dict[str, StoreEntry]) -> None:
        # Read-modify-write without an inter-process lock: two processes
        # writing concurrently may each momentarily publish a manifest
        # missing the other's entry.  That is deliberate — the manifest
        # is best-effort metadata for ``ls``/``gc``/``disk_bytes``, and
        # the reconciliation pass in ``_load_manifest`` re-adopts any
        # object file the manifest lost, so no cached *model* is ever
        # affected; only listings can briefly lag ``objects/``.
        entries = self._load_manifest()
        entries.update(new_entries)
        self._write_manifest(entries)

    def _drop_manifest_entries(self, keys: Sequence[str]) -> None:
        entries = self._load_manifest()
        for key in keys:
            entries.pop(key, None)
        self._write_manifest(entries)

    # ------------------------------------------------------------------
    # Public cache API
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[AddPowerModel]:
        """Cached model for ``key``, or None (memory first, then disk)."""
        model = self._lru_get(key)
        if model is not None:
            _MEMORY_HITS.inc()
            return model
        loaded = self._read_entry(key)
        if loaded is None:
            return None
        model, size = loaded
        _DISK_HITS.inc()
        self._lru_put(key, model, size)
        return model

    def contains(self, key: str) -> bool:
        """True if the key resolves in memory or on disk."""
        return key in self._lru or self._object_path(key).exists()

    def put(
        self, netlist: Netlist, model: AddPowerModel, **build_kwargs
    ) -> str:
        """Insert an already-built model; returns its key."""
        if model.source_hash is None:
            model.source_hash = netlist.content_hash()
        key = self.key_for(netlist, **build_kwargs)
        entry = self._write_entry(key, model, build_kwargs)
        self._lru_put(key, model, entry.payload_bytes)
        return key

    def get_or_build(
        self,
        netlist: Netlist,
        *,
        job_timeout_s: Optional[float] = None,
        max_retries: int = 1,
        degrade_max_nodes: Optional[int] = None,
        **build_kwargs,
    ) -> AddPowerModel:
        """The main path: cached model, or build-and-cache on a miss."""
        return self.get_or_build_many(
            [(netlist, build_kwargs)],
            job_timeout_s=job_timeout_s,
            max_retries=max_retries,
            degrade_max_nodes=degrade_max_nodes,
        )[0]

    def get_or_build_many(
        self,
        jobs: Sequence[BuildJob],
        processes: Optional[int] = None,
        *,
        job_timeout_s: Optional[float] = None,
        max_retries: int = 1,
        degrade_max_nodes: Optional[int] = None,
        **common_kwargs,
    ) -> List[AddPowerModel]:
        """Resolve many (netlist, config) jobs at once, in job order.

        Hits are served from the cache; *all* misses are built in one
        supervised :func:`~repro.models.addmodel.build_add_models_parallel`
        fan-out, so a cold store pays one pool spin-up, not one per
        model.  ``job_timeout_s``/``max_retries``/``degrade_max_nodes``
        configure the build supervisor's recovery ladder; a job degraded
        to a tighter ``max_nodes`` budget is cached under its *effective*
        (degraded) configuration, never under the exact key it missed on.
        When a job fails every rung, its siblings' models are still
        cached before the failure is raised.
        """
        tracer = get_tracer()
        normalized: List[Tuple[Netlist, Dict]] = []
        for job in jobs:
            if isinstance(job, Netlist):
                netlist, overrides = job, {}
            else:
                netlist, overrides = job
            kwargs = dict(common_kwargs)
            kwargs.update(overrides)
            normalized.append((netlist, kwargs))

        results: List[Optional[AddPowerModel]] = [None] * len(normalized)
        keys: List[Optional[str]] = [None] * len(normalized)
        misses: List[int] = []
        miss_keys: Dict[str, int] = {}
        for position, (netlist, kwargs) in enumerate(normalized):
            key = keys[position] = store_key(netlist, kwargs)
            with tracer.span("serve.store.get", key=key[:12]):
                model = self.get(key)
            if (
                model is not None
                and model.source_hash is not None
                and model.source_hash != netlist.content_hash()
            ):
                # The payload's recorded netlist hash disagrees with the
                # netlist this key was derived from: a tampered or
                # misplaced entry.  Quarantine and rebuild.
                _CORRUPT.inc()
                self.remove(key)
                model = None
            if model is not None:
                _HITS.inc()
                results[position] = model
            else:
                _MISSES.inc()
                # Deduplicate identical jobs within one batch: build once,
                # share the instance.
                if key in miss_keys:
                    continue
                miss_keys[key] = position
                misses.append(position)
        first_failure = None
        built_by_key: Dict[str, AddPowerModel] = {}
        if misses:
            with tracer.span("serve.store.build", count=len(misses)):
                outcomes = build_add_models_parallel(
                    [normalized[p] for p in misses],
                    processes=processes,
                    job_timeout_s=job_timeout_s,
                    max_retries=max_retries,
                    degrade_max_nodes=degrade_max_nodes,
                    raise_on_error=False,
                )
            for position, outcome in zip(misses, outcomes):
                netlist, kwargs = normalized[position]
                if not outcome.ok:
                    if first_failure is None:
                        first_failure = outcome
                    continue
                _BUILDS.inc()
                # A degraded model answers this call but is cached under
                # the configuration that actually built it, so the exact
                # key stays a miss and can be rebuilt properly later.
                effective = (
                    outcome.effective_kwargs
                    if outcome.status == "degraded"
                    else kwargs
                )
                self.put(netlist, outcome.model, **effective)
                results[position] = outcome.model
                built_by_key[keys[position]] = outcome.model
        if first_failure is not None:
            # Siblings are cached above; now surface the typed failure.
            first_failure.raise_error()
        # Fill duplicate-miss positions from whatever their key built to.
        for position in range(len(normalized)):
            if results[position] is None:
                key = keys[position]
                model = built_by_key.get(key)
                results[position] = (
                    model if model is not None else self.get(key)
                )
        assert all(model is not None for model in results)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def ls(self) -> List[StoreEntry]:
        """All entries, newest first."""
        return sorted(
            self._load_manifest().values(),
            key=lambda entry: -entry.created_at,
        )

    def disk_bytes(self) -> int:
        """Total serialised bytes across all cached objects."""
        return sum(entry.payload_bytes for entry in self._load_manifest().values())

    def remove(self, key: str) -> bool:
        """Delete one entry from disk and memory; True if it existed."""
        existed = False
        with self._lock:
            if key in self._lru:
                self._lru_bytes -= self._lru.pop(key)[1]
                existed = True
        try:
            self._object_path(key).unlink()
            existed = True
        except FileNotFoundError:
            pass
        self._drop_manifest_entries([key])
        return existed

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        now: Optional[float] = None,
    ) -> List[StoreEntry]:
        """Shrink the disk cache; returns the entries removed.

        Entries older than ``max_age_seconds`` go first; then, if the
        remaining total still exceeds ``max_bytes``, oldest entries are
        dropped until it fits.
        """
        now = time.time() if now is None else now
        entries = sorted(
            self._load_manifest().values(), key=lambda entry: entry.created_at
        )
        removed: List[StoreEntry] = []
        if max_age_seconds is not None:
            for entry in list(entries):
                if now - entry.created_at > max_age_seconds:
                    removed.append(entry)
                    entries.remove(entry)
        if max_bytes is not None:
            total = sum(entry.payload_bytes for entry in entries)
            while entries and total > max_bytes:
                entry = entries.pop(0)
                total -= entry.payload_bytes
                removed.append(entry)
        for entry in removed:
            self.remove(entry.key)
        _GC_REMOVED.inc(len(removed))
        return removed

    def prefetch(
        self,
        netlists: Sequence[Netlist],
        processes: Optional[int] = None,
        **build_kwargs,
    ) -> List[str]:
        """Warm the store for a set of netlists; returns their keys."""
        self.get_or_build_many(list(netlists), processes=processes, **build_kwargs)
        return [self.key_for(n, **build_kwargs) for n in netlists]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ModelStore(root={str(self.root)!r}, "
            f"memory={self._lru_bytes}/{self.memory_budget_bytes}B, "
            f"resident={len(self._lru)})"
        )
