"""Content-addressed persistence of ADD power models.

The paper's economics only work if a model is *built once* and reused for
arbitrarily many queries; :class:`ModelStore` makes that literal.  Every
model is cached under a key derived from *content*, not names:

    key = sha256( canonical netlist structure , canonical build config )

so a structurally identical netlist — whatever file, generator or process
it came from — resolves to the same cached model, while any change to the
circuit or to the build parameters (``max_nodes``, ``strategy``, ...)
produces a different key and therefore a fresh build.

Persistence is delegated to a :class:`~repro.serve.storage.StoreBackend`:
the default :class:`~repro.serve.storage.LocalDirBackend` keeps the
original on-disk layout bit for bit ::

    <root>/objects/<key>.json   # one store entry per model (atomic writes)
    <root>/manifest.json        # metadata cache, rebuildable from objects/

while :class:`~repro.serve.storage.ObjectStoreBackend` puts the same
objects behind an S3-style network server, so a farm of build workers
can publish into one replicated store (see :mod:`repro.serve.queue`).

The ``objects/`` namespace is the source of truth.  The manifest is a
pure metadata cache (macro name, sizes, timestamps, last access) kept for
cheap ``ls``/``gc``; it is rewritten atomically after every mutation and,
if it is ever missing, corrupt, or lost an entry to a concurrent writer,
it is reconciled against ``objects/`` on the next load — so ``ls``/``gc``
are best-effort views that may briefly lag the object files, never the
other way around.  Backends guarantee atomic publish (write-to-temp +
:func:`os.replace` locally), so concurrent processes sharing one store
never observe partial entries — the worst case under a build race is
that both processes build and one atomic replace wins.  An object file
written by a *different store version* (a newer build sharing the
directory) is left untouched and simply skipped by this build.

On top of the persistence layer sits a per-process LRU of deserialised
models bounded by an *approximate* byte budget (the serialised payload
size is used as the estimate), so a server process keeps its hot models
resident without unbounded growth.  Every resolution is also recorded in
a bounded access profile — the telemetry the queue's background warmer
mines for predicted-hot keys.
"""

from __future__ import annotations

import inspect
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ModelError
from repro.models.addmodel import (
    AddPowerModel,
    BuildJob,
    build_add_model,
    build_add_models_parallel,
)
from repro.models.serialize import model_from_dict, model_to_dict
from repro.netlist.netlist import Netlist
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.serve.storage import (
    LocalDirBackend,
    StoreBackend,
    open_backend,
    sha256_hex,
)

ENTRY_FORMAT = "repro-model-store-entry"
MANIFEST_FORMAT = "repro-model-store-manifest"
STORE_VERSION = 1

#: Default in-memory budget: enough for a few hundred budget-sized
#: (MAX=1000) models, small next to a typical server's footprint.
DEFAULT_MEMORY_BUDGET_BYTES = 128 * 1024 * 1024

#: Keys tracked in the access profile the warmer mines (LRU-bounded).
ACCESS_PROFILE_CAPACITY = 1024

_MET = get_metrics()
_HITS = _MET.counter("serve.store.hits")
_MISSES = _MET.counter("serve.store.misses")
_MEMORY_HITS = _MET.counter("serve.store.memory_hits")
_DISK_HITS = _MET.counter("serve.store.disk_hits")
_BUILDS = _MET.counter("serve.store.builds")
_EVICTIONS = _MET.counter("serve.store.lru_evictions")
_CORRUPT = _MET.counter("serve.store.corrupt_entries")
_VERSION_SKIPS = _MET.counter("serve.store.version_skips")
_GC_REMOVED = _MET.counter("serve.store.gc_removed")
_IO_FAILURES = _MET.counter("serve.store.io_failures")
_MANIFEST_RECOVERIES = _MET.counter("serve.store.manifest_recoveries")
_WARM_HITS = _MET.counter("serve.store.warm.hits")
_WARM_BUILDS = _MET.counter("serve.store.warm.builds")
_QUEUE_MISSES_ROUTED = _MET.counter("serve.store.queue_routed")
_QUEUE_FALLBACKS = _MET.counter("serve.store.queue_fallbacks")
_QUEUE_RESUBMITS = _MET.counter("serve.store.queue_resubmits")


def _builder_defaults() -> Dict:
    """``build_add_model``'s keyword defaults, read off its signature.

    Derived programmatically so the canonical config can never drift
    from what a bare ``build_add_model(netlist)`` actually builds — a
    drift would alias two *different* builds onto one store key and
    silently serve whichever was cached first.
    """
    return {
        name: parameter.default
        for name, parameter in inspect.signature(
            build_add_model
        ).parameters.items()
        if parameter.default is not inspect.Parameter.empty
    }


_BUILD_DEFAULTS = _builder_defaults()


def canonical_build_config(config: Dict) -> Dict:
    """Normalise ``build_add_model`` keyword arguments for hashing.

    Fills in the builder's own signature defaults so ``{}`` and an
    explicit ``{"max_nodes": None}``-style spelling of the same build
    hash identically, and sorts any explicit input order into a
    reproducible JSON shape.
    """
    known = dict(_BUILD_DEFAULTS)
    unknown = sorted(set(config) - set(known))
    if unknown:
        raise ModelError(
            f"unknown build config key(s) for the model store: {unknown}"
        )
    merged = dict(known)
    merged.update(config)
    if merged["input_order"] is not None:
        merged["input_order"] = list(merged["input_order"])
    return merged


def store_key(netlist: Netlist, config: Dict) -> str:
    """Content-addressed cache key for (netlist, build config)."""
    return store_key_from_canonical(netlist.canonical_dict(), config)


def store_key_from_canonical(netlist_dict: Dict, config: Dict) -> str:
    """The same key, from an already-canonicalised netlist dict.

    The build-queue server holds netlists only in their wire form
    (:meth:`~repro.netlist.netlist.Netlist.canonical_dict`); keying from
    the dict directly keeps submitter, server and worker agreeing on one
    key without every party rebuilding a :class:`Netlist`.
    """
    blob = json.dumps(
        {
            "netlist": netlist_dict,
            "config": canonical_build_config(config),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return sha256_hex(blob.encode("utf-8"))


@dataclass(frozen=True)
class StoreEntry:
    """Manifest metadata for one cached model."""

    key: str
    macro_name: str
    strategy: str
    max_nodes: Optional[int]
    nodes: int
    payload_bytes: int
    netlist_sha256: str
    created_at: float
    #: When the entry was last served (``get``/LRU hit); equals
    #: ``created_at`` until the first access.  Best-effort: in-memory
    #: hits are folded into the next manifest rewrite.
    last_access_at: float = 0.0

    def __post_init__(self) -> None:
        if self.last_access_at <= 0.0:
            object.__setattr__(self, "last_access_at", self.created_at)

    def to_dict(self) -> Dict:
        return {
            "key": self.key,
            "macro_name": self.macro_name,
            "strategy": self.strategy,
            "max_nodes": self.max_nodes,
            "nodes": self.nodes,
            "payload_bytes": self.payload_bytes,
            "netlist_sha256": self.netlist_sha256,
            "created_at": self.created_at,
            "last_access_at": self.last_access_at,
        }

    @classmethod
    def from_dict(cls, raw: Dict) -> "StoreEntry":
        return cls(
            key=raw["key"],
            macro_name=raw["macro_name"],
            strategy=raw["strategy"],
            max_nodes=raw["max_nodes"],
            nodes=raw["nodes"],
            payload_bytes=raw["payload_bytes"],
            netlist_sha256=raw["netlist_sha256"],
            created_at=raw["created_at"],
            # Manifests written before the field existed lack it; those
            # entries count as last touched when they were created.
            last_access_at=raw.get("last_access_at", raw["created_at"]),
        )


@dataclass(frozen=True)
class AccessRecord:
    """One key's slice of the store access profile (warmer telemetry)."""

    key: str
    netlist: Netlist
    config: Dict
    accesses: int
    last_access_at: float


@dataclass(frozen=True)
class PrefetchReport:
    """Outcome of one :meth:`ModelStore.prefetch` warm-up pass."""

    keys: List[str]
    hits: int
    builds: int

    def summary(self) -> str:
        return (
            f"prefetch: {len(self.keys)} model(s) — "
            f"{self.hits} already cached, {self.builds} built"
        )


def _encode_json(payload: Dict) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


class ModelStore:
    """Content-addressed persistent + in-memory cache of ADD power models."""

    def __init__(
        self,
        root: Union[str, Path, StoreBackend],
        memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES,
    ):
        if memory_budget_bytes < 0:
            raise ModelError("memory_budget_bytes must be >= 0")
        self.backend = open_backend(root)
        self.memory_budget_bytes = memory_budget_bytes
        # key -> (model, approximate byte cost); most recently used last.
        self._lru: "OrderedDict[str, Tuple[AddPowerModel, int]]" = OrderedDict()
        self._lru_bytes = 0
        # Guards the LRU against concurrent get_or_build callers (e.g.
        # a server thread racing a prefetch thread).
        self._lock = threading.RLock()
        #: Accesses not yet persisted to the manifest (key -> timestamp);
        #: folded into the next manifest rewrite.
        self._pending_touches: Dict[str, float] = {}
        #: key -> AccessRecord, most recently accessed last (warmer feed).
        self._access_profile: "OrderedDict[str, AccessRecord]" = OrderedDict()

    # ------------------------------------------------------------------
    # Local-layout compatibility accessors
    # ------------------------------------------------------------------
    @property
    def root(self) -> Path:
        """Root directory of a local store (errors on remote backends)."""
        if isinstance(self.backend, LocalDirBackend):
            return self.backend.root
        raise ModelError(
            f"store backend {self.backend.describe()} has no local root"
        )

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    def key_for(self, netlist: Netlist, **build_kwargs) -> str:
        """The store key this netlist + build config resolves to."""
        return store_key(netlist, build_kwargs)

    @staticmethod
    def _object_name(key: str) -> str:
        if not key or any(ch not in "0123456789abcdef" for ch in key):
            raise ModelError(f"malformed store key {key!r}")
        return f"objects/{key}.json"

    def _object_path(self, key: str) -> Path:
        """Filesystem path of one entry (local backends only; tests)."""
        return self.root / self._object_name(key)

    # ------------------------------------------------------------------
    # In-memory LRU
    # ------------------------------------------------------------------
    def _lru_get(self, key: str) -> Optional[AddPowerModel]:
        with self._lock:
            hit = self._lru.get(key)
            if hit is None:
                return None
            self._lru.move_to_end(key)
            return hit[0]

    def _lru_put(self, key: str, model: AddPowerModel, cost: int) -> None:
        with self._lock:
            if key in self._lru:
                self._lru_bytes -= self._lru.pop(key)[1]
            self._lru[key] = (model, cost)
            self._lru_bytes += cost
            # Evict least-recently-used entries down to the budget, but
            # never the entry just inserted (a single over-budget model
            # stays resident rather than thrashing on every call).
            while (
                self._lru_bytes > self.memory_budget_bytes
                and len(self._lru) > 1
            ):
                _, (_, evicted_cost) = self._lru.popitem(last=False)
                self._lru_bytes -= evicted_cost
                _EVICTIONS.inc()

    @property
    def memory_bytes(self) -> int:
        """Approximate bytes currently pinned by the in-memory LRU."""
        return self._lru_bytes

    @property
    def memory_entries(self) -> int:
        """Number of models resident in the in-memory LRU."""
        return len(self._lru)

    # ------------------------------------------------------------------
    # Access telemetry (gc recency + warmer feed)
    # ------------------------------------------------------------------
    def _touch(self, key: str) -> None:
        with self._lock:
            self._pending_touches[key] = time.time()

    def _record_access(self, key: str, netlist: Netlist, config: Dict) -> None:
        now = time.time()
        with self._lock:
            previous = self._access_profile.pop(key, None)
            self._access_profile[key] = AccessRecord(
                key=key,
                netlist=netlist,
                config=dict(config),
                accesses=(previous.accesses + 1) if previous else 1,
                last_access_at=now,
            )
            while len(self._access_profile) > ACCESS_PROFILE_CAPACITY:
                self._access_profile.popitem(last=False)

    def access_profile(self) -> List[AccessRecord]:
        """Per-key access telemetry, most recently accessed last.

        The feed of the build queue's background warmer: each record
        carries enough (netlist + config) to re-submit the key for a
        rebuild if it goes missing while still hot.
        """
        with self._lock:
            return list(self._access_profile.values())

    # ------------------------------------------------------------------
    # Persistence layer
    # ------------------------------------------------------------------
    def _read_entry(self, key: str) -> Optional[Tuple[AddPowerModel, int]]:
        """Load one object; quarantines corrupt entries.

        Returns ``(model, payload_bytes)`` or None when the entry is
        absent or unreadable.  A corrupt payload (truncated write from a
        crashed process, bit rot, a payload that won't decode) is
        deleted so the caller falls through to a rebuild instead of
        failing forever.  An entry whose *store version* differs — e.g.
        written by a newer build sharing this store — is not ours to
        judge: it is skipped without touching the object, and this build
        simply rebuilds in its own format.
        """
        name = self._object_name(key)
        try:
            data = self.backend.get(name)
        except FileNotFoundError:
            return None
        except OSError:
            # Persistently unreadable (disk/network trouble, not
            # absence): treat as a miss so the caller rebuilds; the
            # object stays for later.
            _IO_FAILURES.inc()
            return None
        try:
            raw = json.loads(data)
            if not isinstance(raw, dict) or raw.get("format") != ENTRY_FORMAT:
                raise ModelError(f"not a {ENTRY_FORMAT} payload")
            if raw.get("version") != STORE_VERSION:
                _VERSION_SKIPS.inc()
                return None
            model = model_from_dict(raw["model"])
        except Exception:  # noqa: BLE001 - any undecodable entry is corrupt
            _CORRUPT.inc()
            try:
                self.backend.delete(name)
            except OSError:  # pragma: no cover - racing delete
                pass
            self._drop_manifest_entries([key])
            return None
        return model, len(data)

    def _read_entry_meta(self, key: str) -> Optional[StoreEntry]:
        """Manifest metadata for one object, without rebuilding the ADD.

        Used by manifest reconciliation, which must stay cheap: ``ls``,
        ``gc`` and every ``put`` may scan entries another process wrote,
        and deserialising whole models there would make bulk inserts
        quadratic.  Unreadable or foreign-version objects simply yield
        None (no quarantine here — that happens on the ``get`` path).
        """
        name = self._object_name(key)
        try:
            data = self.backend.get(name)
            raw = json.loads(data)
            if not isinstance(raw, dict) or raw.get("format") != ENTRY_FORMAT:
                return None
            if raw.get("version") != STORE_VERSION:
                return None
            payload = raw["model"]
            config = raw.get("config") or {}
            info = self.backend.head(name)
            created = info.mtime if info is not None else time.time()
            return StoreEntry(
                key=key,
                macro_name=str(payload["macro_name"]),
                strategy=str(payload["strategy"]),
                max_nodes=config.get("max_nodes"),
                nodes=len(payload["nodes"]),
                payload_bytes=len(data),
                netlist_sha256=payload.get("source_netlist_sha256") or "",
                created_at=created,
            )
        except Exception:  # noqa: BLE001 - reconciliation is best-effort
            return None

    def _write_entry(
        self, key: str, model: AddPowerModel, config: Dict
    ) -> StoreEntry:
        payload = {
            "format": ENTRY_FORMAT,
            "version": STORE_VERSION,
            "key": key,
            "config": canonical_build_config(config),
            "model": model_to_dict(model),
        }
        data = _encode_json(payload)
        size = len(data)
        try:
            self.backend.put(self._object_name(key), data)
        except OSError:
            # Persisting is best-effort: the model is still valid and
            # stays resident in memory; only its stored copy is missing.
            _IO_FAILURES.inc()
        entry = StoreEntry(
            key=key,
            macro_name=model.macro_name,
            strategy=model.strategy,
            max_nodes=canonical_build_config(config)["max_nodes"],
            nodes=model.size,
            payload_bytes=size,
            netlist_sha256=model.source_hash or "",
            created_at=time.time(),
        )
        self._update_manifest({key: entry})
        return entry

    # ------------------------------------------------------------------
    # Manifest (metadata cache; objects/ is the source of truth)
    # ------------------------------------------------------------------
    def _load_manifest(self) -> Dict[str, StoreEntry]:
        present = False
        try:
            blob = self.backend.get("manifest.json")
            present = True
            raw = json.loads(blob.decode("utf-8"))
            if raw.get("format") != MANIFEST_FORMAT:
                raise ValueError("wrong manifest format")
            entries = {
                key: StoreEntry.from_dict(value)
                for key, value in raw.get("entries", {}).items()
            }
        except FileNotFoundError:
            entries = {}
        except (OSError, ValueError, KeyError, TypeError):
            if present:
                # A manifest exists but would not parse — a torn write.
                # Reconciliation below rebuilds it from objects/.
                _MANIFEST_RECOVERIES.inc()
            entries = {}
        # Reconcile with the objects namespace: drop stale records, pick
        # up objects another process wrote.  Metadata comes straight from
        # the entry JSON (no model reconstruction), so reconciliation
        # stays cheap even when many foreign objects appear at once.
        stored = {
            name[len("objects/"):-len(".json")]
            for name in self.backend.list("objects/")
            if name.endswith(".json")
        }
        entries = {k: v for k, v in entries.items() if k in stored}
        for key in stored - set(entries):
            meta = self._read_entry_meta(key)
            if meta is not None:
                entries[key] = meta
        return entries

    def _write_manifest(self, entries: Dict[str, StoreEntry]) -> None:
        # Fold pending access touches in while we are rewriting anyway —
        # this is what makes ``last_access_at`` durable without paying a
        # manifest write per in-memory hit.
        with self._lock:
            touches, self._pending_touches = self._pending_touches, {}
        for key, ts in touches.items():
            entry = entries.get(key)
            if entry is not None and ts > entry.last_access_at:
                entries[key] = replace(entry, last_access_at=ts)
        try:
            self.backend.put(
                "manifest.json",
                _encode_json(
                    {
                        "format": MANIFEST_FORMAT,
                        "version": STORE_VERSION,
                        "entries": {
                            k: v.to_dict() for k, v in entries.items()
                        },
                    }
                ),
            )
        except OSError:
            # The manifest is a rebuildable metadata cache; a failed
            # rewrite must never fail the put/remove that triggered it.
            _IO_FAILURES.inc()

    def _update_manifest(self, new_entries: Dict[str, StoreEntry]) -> None:
        # Read-modify-write without an inter-process lock: two processes
        # writing concurrently may each momentarily publish a manifest
        # missing the other's entry.  That is deliberate — the manifest
        # is best-effort metadata for ``ls``/``gc``/``disk_bytes``, and
        # the reconciliation pass in ``_load_manifest`` re-adopts any
        # object the manifest lost, so no cached *model* is ever
        # affected; only listings can briefly lag ``objects/``.
        entries = self._load_manifest()
        entries.update(new_entries)
        self._write_manifest(entries)

    def _drop_manifest_entries(self, keys: Sequence[str]) -> None:
        entries = self._load_manifest()
        for key in keys:
            entries.pop(key, None)
        self._write_manifest(entries)

    # ------------------------------------------------------------------
    # Public cache API
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[AddPowerModel]:
        """Cached model for ``key``, or None (memory first, then disk)."""
        model = self._lru_get(key)
        if model is not None:
            _MEMORY_HITS.inc()
            self._touch(key)
            return model
        loaded = self._read_entry(key)
        if loaded is None:
            return None
        model, size = loaded
        _DISK_HITS.inc()
        self._lru_put(key, model, size)
        self._touch(key)
        # A cold load is already on the slow path; persist the access so
        # cross-process gc sees honest recency.
        self._update_manifest({})
        return model

    def contains(self, key: str) -> bool:
        """True if the key resolves in memory or in the backend."""
        return (
            key in self._lru
            or self.backend.head(self._object_name(key)) is not None
        )

    def put(
        self, netlist: Netlist, model: AddPowerModel, **build_kwargs
    ) -> str:
        """Insert an already-built model; returns its key."""
        if model.source_hash is None:
            model.source_hash = netlist.content_hash()
        key = self.key_for(netlist, **build_kwargs)
        entry = self._write_entry(key, model, build_kwargs)
        self._lru_put(key, model, entry.payload_bytes)
        return key

    def get_or_build(
        self,
        netlist: Netlist,
        *,
        job_timeout_s: Optional[float] = None,
        max_retries: int = 1,
        degrade_max_nodes: Optional[int] = None,
        queue=None,
        deadline=None,
        **build_kwargs,
    ) -> AddPowerModel:
        """The main path: cached model, or build-and-cache on a miss."""
        return self.get_or_build_many(
            [(netlist, build_kwargs)],
            job_timeout_s=job_timeout_s,
            max_retries=max_retries,
            degrade_max_nodes=degrade_max_nodes,
            queue=queue,
            deadline=deadline,
        )[0]

    def get_or_build_many(
        self,
        jobs: Sequence[BuildJob],
        processes: Optional[int] = None,
        *,
        job_timeout_s: Optional[float] = None,
        max_retries: int = 1,
        degrade_max_nodes: Optional[int] = None,
        queue=None,
        deadline=None,
        **common_kwargs,
    ) -> List[AddPowerModel]:
        """Resolve many (netlist, config) jobs at once, in job order.

        Hits are served from the cache.  Misses are built either locally
        — *all* of them in one supervised
        :func:`~repro.models.addmodel.build_add_models_parallel` fan-out,
        so a cold store pays one pool spin-up, not one per model — or,
        with ``queue=``, remotely: each miss is submitted to a
        :class:`~repro.serve.queue.BuildQueueServer` (a client, a
        ``host:port`` string, or a ``(host, port)`` pair), built by the
        worker farm, published into this store's backend, and loaded
        back here.  A queue that cannot be reached degrades to the local
        build path (``serve.store.queue_fallbacks``) instead of failing
        the request.

        ``job_timeout_s``/``max_retries``/``degrade_max_nodes`` configure
        the local build supervisor's recovery ladder; a job degraded to a
        tighter ``max_nodes`` budget is cached under its *effective*
        (degraded) configuration, never under the exact key it missed
        on.  When a job fails every rung, its siblings' models are still
        cached before the failure is raised.
        """
        tracer = get_tracer()
        normalized: List[Tuple[Netlist, Dict]] = []
        for job in jobs:
            if isinstance(job, Netlist):
                netlist, overrides = job, {}
            else:
                netlist, overrides = job
            kwargs = dict(common_kwargs)
            kwargs.update(overrides)
            normalized.append((netlist, kwargs))

        results: List[Optional[AddPowerModel]] = [None] * len(normalized)
        keys: List[Optional[str]] = [None] * len(normalized)
        misses: List[int] = []
        miss_keys: Dict[str, int] = {}
        for position, (netlist, kwargs) in enumerate(normalized):
            key = keys[position] = store_key(netlist, kwargs)
            self._record_access(key, netlist, kwargs)
            with tracer.span("serve.store.get", key=key[:12]):
                model = self.get(key)
            if (
                model is not None
                and model.source_hash is not None
                and model.source_hash != netlist.content_hash()
            ):
                # The payload's recorded netlist hash disagrees with the
                # netlist this key was derived from: a tampered or
                # misplaced entry.  Quarantine and rebuild.
                _CORRUPT.inc()
                self.remove(key)
                model = None
            if model is not None:
                _HITS.inc()
                results[position] = model
            else:
                _MISSES.inc()
                # Deduplicate identical jobs within one batch: build once,
                # share the instance.
                if key in miss_keys:
                    continue
                miss_keys[key] = position
                misses.append(position)
        first_failure = None
        built_by_key: Dict[str, AddPowerModel] = {}
        if misses and queue is not None:
            remote = self._resolve_via_queue(
                queue,
                [(keys[p], normalized[p][0], normalized[p][1]) for p in misses],
                deadline=deadline,
            )
            if remote is not None:
                for position in misses:
                    model = remote.get(keys[position])
                    if model is not None:
                        results[position] = model
                        built_by_key[keys[position]] = model
                misses = [p for p in misses if results[p] is None]
        if misses:
            with tracer.span("serve.store.build", count=len(misses)):
                outcomes = build_add_models_parallel(
                    [normalized[p] for p in misses],
                    processes=processes,
                    job_timeout_s=job_timeout_s,
                    max_retries=max_retries,
                    degrade_max_nodes=degrade_max_nodes,
                    raise_on_error=False,
                )
            for position, outcome in zip(misses, outcomes):
                netlist, kwargs = normalized[position]
                if not outcome.ok:
                    if first_failure is None:
                        first_failure = outcome
                    continue
                _BUILDS.inc()
                # A degraded model answers this call but is cached under
                # the configuration that actually built it, so the exact
                # key stays a miss and can be rebuilt properly later.
                effective = (
                    outcome.effective_kwargs
                    if outcome.status == "degraded"
                    else kwargs
                )
                self.put(netlist, outcome.model, **effective)
                results[position] = outcome.model
                built_by_key[keys[position]] = outcome.model
        if first_failure is not None:
            # Siblings are cached above; now surface the typed failure.
            first_failure.raise_error()
        # Fill duplicate-miss positions from whatever their key built to.
        for position in range(len(normalized)):
            if results[position] is None:
                key = keys[position]
                model = built_by_key.get(key)
                results[position] = (
                    model if model is not None else self.get(key)
                )
        assert all(model is not None for model in results)
        return results  # type: ignore[return-value]

    def _resolve_via_queue(
        self,
        queue,
        jobs: Sequence[Tuple[str, Netlist, Dict]],
        deadline=None,
    ) -> Optional[Dict[str, AddPowerModel]]:
        """Build misses through the distributed queue; None = degrade.

        Submits every miss, long-polls completion, then loads the
        published models back from this store's (shared) backend.  A
        *build* failure raises — it would fail locally too; a *queue*
        transport failure returns None so the caller can fall back to
        the local build path.

        Reconnect-with-resubmit: when the connection dies mid-wait (a
        supervised queue restart), the still-unresolved jobs are
        re-submitted — dedupe-safe, the server keys by content — and the
        wait resumes, up to two reconnect rounds
        (``serve.store.queue_resubmits``) before degrading.  An optional
        end-to-end ``deadline`` (:class:`~repro.serve.protocol.Deadline`)
        rides every submit and wait, so the whole remote detour never
        outlives the caller's budget.
        """
        from repro.errors import ServeConnectionError
        from repro.serve import protocol
        from repro.serve.client import RetryPolicy
        from repro.serve.queue import BuildQueueClient

        tracer = get_tracer()
        owned = not isinstance(queue, BuildQueueClient)
        client = None
        max_reconnect_rounds = 2
        try:
            if owned:
                client = BuildQueueClient.resolve(queue)
                # Our own client gets a retry policy so one broker
                # restart costs milliseconds, not the whole remote path.
                if client.retry is None:
                    client.retry = RetryPolicy(
                        max_attempts=4, base_delay_s=0.05, max_delay_s=0.5
                    )
            else:
                client = queue
            with tracer.span("serve.store.queue_build", count=len(jobs)):
                for key, netlist, config in jobs:
                    client.submit(netlist, config, deadline=deadline)
                    _QUEUE_MISSES_ROUTED.inc()
                resolved: Dict[str, AddPowerModel] = {}
                unresolved = list(jobs)
                rounds = 0
                while unresolved:
                    key, netlist, config = unresolved[0]
                    try:
                        state = client.wait(key, deadline=deadline)
                    except ServeConnectionError:
                        rounds += 1
                        if rounds > max_reconnect_rounds:
                            raise
                        # The broker went away mid-wait.  If it was
                        # restarted by a supervisor, its WAL already
                        # holds our jobs — but resubmitting is free
                        # (content-keyed dedupe) and also covers the
                        # broker that came back empty.
                        _QUEUE_RESUBMITS.inc()
                        for _, n, c in unresolved:
                            client.submit(n, c, deadline=deadline)
                        continue
                    except protocol.ResponseError as exc:
                        # A WAL-less broker restarted and forgot the
                        # job entirely: same recovery, re-submit.
                        if exc.error_type != "not_found":
                            raise
                        rounds += 1
                        if rounds > max_reconnect_rounds:
                            raise ModelError(
                                f"queue keeps forgetting job {key[:12]} "
                                f"across restarts: {exc}"
                            )
                        _QUEUE_RESUBMITS.inc()
                        for _, n, c in unresolved:
                            client.submit(n, c, deadline=deadline)
                        continue
                    if state.get("state") != "done":
                        raise ModelError(
                            f"distributed build of {key[:12]} "
                            f"{state.get('state', 'vanished')}: "
                            f"{state.get('error') or 'no detail'}"
                        )
                    model = self.get(key)
                    if model is None:
                        raise ModelError(
                            f"queue reported {key[:12]} done but the store "
                            f"backend {self.backend.describe()} has no entry "
                            "— are store and workers sharing one backend?"
                        )
                    _BUILDS.inc()
                    resolved[key] = model
                    unresolved.pop(0)
                return resolved
        except (ServeConnectionError, OSError):
            _QUEUE_FALLBACKS.inc()
            return None
        finally:
            if owned and client is not None:
                client.close()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def ls(self) -> List[StoreEntry]:
        """All entries, newest first."""
        return sorted(
            self._load_manifest().values(),
            key=lambda entry: -entry.created_at,
        )

    def disk_bytes(self) -> int:
        """Total serialised bytes across all cached objects."""
        return sum(entry.payload_bytes for entry in self._load_manifest().values())

    def remove(self, key: str) -> bool:
        """Delete one entry from the backend and memory; True if it existed."""
        existed = False
        with self._lock:
            if key in self._lru:
                self._lru_bytes -= self._lru.pop(key)[1]
                existed = True
        try:
            if self.backend.delete(self._object_name(key)):
                existed = True
        except OSError:
            _IO_FAILURES.inc()
        self._drop_manifest_entries([key])
        return existed

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        now: Optional[float] = None,
    ) -> List[StoreEntry]:
        """Shrink the persistent cache; returns the entries removed.

        Eviction is by *recency of access*, not creation: entries whose
        ``last_access_at`` is older than ``max_age_seconds`` go first;
        then, if the remaining total still exceeds ``max_bytes``, the
        least recently accessed entries are dropped until it fits.  A
        model built long ago but served every minute survives; a fresh
        build nobody asked for again does not.  In-memory hits not yet
        flushed to the manifest are folded in before deciding, so a
        same-process gc never evicts what it just served.

        All evictions are batched into **one** manifest rewrite (plus
        one LRU sweep), not one ``remove()`` round trip per entry.
        """
        now = time.time() if now is None else now
        with self._lock:
            pending = dict(self._pending_touches)

        def last_access(entry: StoreEntry) -> float:
            return max(entry.last_access_at, pending.get(entry.key, 0.0))

        entries = sorted(self._load_manifest().values(), key=last_access)
        removed: List[StoreEntry] = []
        if max_age_seconds is not None:
            for entry in list(entries):
                if now - last_access(entry) > max_age_seconds:
                    removed.append(entry)
                    entries.remove(entry)
        if max_bytes is not None:
            total = sum(entry.payload_bytes for entry in entries)
            while entries and total > max_bytes:
                entry = entries.pop(0)
                total -= entry.payload_bytes
                removed.append(entry)
        if removed:
            with self._lock:
                for entry in removed:
                    if entry.key in self._lru:
                        self._lru_bytes -= self._lru.pop(entry.key)[1]
            for entry in removed:
                try:
                    self.backend.delete(self._object_name(entry.key))
                except OSError:
                    _IO_FAILURES.inc()
            # One manifest rewrite for the whole eviction set — gc used
            # to rewrite it once per entry, N reconciliation scans deep.
            self._drop_manifest_entries([entry.key for entry in removed])
        _GC_REMOVED.inc(len(removed))
        return removed

    def prefetch(
        self,
        netlists: Sequence[Netlist],
        processes: Optional[int] = None,
        queue=None,
        **build_kwargs,
    ) -> PrefetchReport:
        """Warm the store for a set of netlists.

        Returns a :class:`PrefetchReport` splitting the set into models
        that were already cached (``hits``) and models this pass had to
        build (``builds``); the same split rides the
        ``serve.store.warm.hits`` / ``serve.store.warm.builds`` counters
        so ``repro stats`` shows what warming actually cost.
        """
        keys = [self.key_for(n, **build_kwargs) for n in netlists]
        already = {key for key in set(keys) if self.contains(key)}
        hits = sum(1 for key in keys if key in already)
        builds = len(set(keys) - already)
        _WARM_HITS.inc(hits)
        _WARM_BUILDS.inc(builds)
        self.get_or_build_many(
            list(netlists), processes=processes, queue=queue, **build_kwargs
        )
        return PrefetchReport(keys=keys, hits=hits, builds=builds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ModelStore(backend={self.backend.describe()!r}, "
            f"memory={self._lru_bytes}/{self.memory_budget_bytes}B, "
            f"resident={len(self._lru)})"
        )
