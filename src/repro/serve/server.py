"""Micro-batching asyncio server for power queries.

:class:`PowerQueryServer` holds a set of named, pre-compiled
:class:`~repro.models.addmodel.AddPowerModel`\\ s and answers the JSON-lines
protocol of :mod:`repro.serve.protocol` over TCP.  Its defining feature is
the request path: concurrent ``evaluate`` requests for the *same* model are
not evaluated one by one — they are parked in a per-model
:class:`_Batcher` and flushed as **one** numpy call through the compiled
ADD kernel once either ``max_batch`` rows have accumulated or the oldest
request has waited ``max_wait_ms``.  A root-to-leaf batch walk costs
almost the same for 64 rows as for one (the per-level numpy overhead
dominates), so batching converts per-request kernel cost into per-batch
kernel cost; ``benchmarks/bench_serving.py`` quantifies the win.

Operational behaviour:

- **per-request timeouts** — every request carries a deadline; a flush
  answers expired requests with a structured ``timeout`` error instead of
  evaluating them;
- **structured errors** — malformed lines, unknown models, bad bit
  strings and internal failures all map to typed error responses, and a
  protocol error never tears down the connection;
- **graceful shutdown** — ``stop()`` (or the ``shutdown`` op) stops
  accepting connections, flushes every parked request, answers it, and
  closes the streams.

The server is single-loop asyncio: evaluation happens inline on the event
loop (numpy releases the GIL for the heavy gathers, and a batch costs
tens of microseconds), which keeps the design free of cross-thread
handoff.  For tests, the CLI and benchmarks, :func:`start_in_thread` runs
a server on a private loop in a daemon thread and returns a handle.
"""

from __future__ import annotations

import asyncio
import os
import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.models.addmodel import AddPowerModel
from repro.obs.metrics import LATENCY_BUCKETS, get_metrics
from repro.obs.trace import (
    TraceContext,
    get_tracer,
    use_trace_context,
)
from repro.serve import protocol
from repro.serve.protocol import Deadline, ProtocolError
from repro.testing import faults

_MET = get_metrics()
_CONNECTIONS = _MET.counter("serve.connections")
_REQUESTS = _MET.counter("serve.requests")
_ERRORS = _MET.counter("serve.errors")
_TIMEOUTS = _MET.counter("serve.timeouts")
_SHED_CONNECTIONS = _MET.counter("serve.shed.connections")
_SHED_REQUESTS = _MET.counter("serve.shed.requests")
_SHED_ROWS = _MET.counter("serve.shed.rows")
_EVAL_REQUESTS = _MET.counter("serve.eval.requests")
_EVAL_ROWS = _MET.counter("serve.eval.rows")
_EVAL_BATCHES = _MET.counter("serve.eval.batches")
_FUSED_BATCHES = _MET.counter("serve.eval.fused_batches")
_FUSED_SEGMENTS = _MET.counter("serve.eval.fused_segments")
_RELOADS = _MET.counter("serve.reloads")
_BATCH_ROWS = _MET.histogram(
    "serve.eval.batch_rows", (1, 2, 4, 8, 16, 32, 64, 128, 256, 1024)
)
_REQUEST_SECONDS = _MET.histogram(
    "serve.request.seconds",
    (1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0),
)
# Per-request latency anatomy: where did an evaluate's wall time go?
# queue_wait = dispatch -> parked in a batcher, batch_wait = parked ->
# flush start, kernel = the batch's kernel call, serialize = slicing +
# encoding + writing this request's reply.  Log-bucketed so quantile
# estimates carry a constant relative error across four decades.
_QUEUE_WAIT = _MET.histogram("serve.latency.queue_wait_seconds", LATENCY_BUCKETS)
_BATCH_WAIT = _MET.histogram("serve.latency.batch_wait_seconds", LATENCY_BUCKETS)
_KERNEL_SECONDS = _MET.histogram("serve.latency.kernel_seconds", LATENCY_BUCKETS)
_SERIALIZE_SECONDS = _MET.histogram(
    "serve.latency.serialize_seconds", LATENCY_BUCKETS
)
_SLOWLOG_ENTRIES = _MET.counter("serve.slowlog.entries")


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one :class:`PowerQueryServer`."""

    host: str = "127.0.0.1"
    #: 0 = pick an ephemeral port (read it back from ``server.port``).
    port: int = 0
    #: Flush a model's queue as soon as this many rows are parked.
    max_batch: int = 256
    #: ... or when the oldest parked request has waited this long.
    max_wait_ms: float = 2.0
    #: Requests not answered within this budget get a ``timeout`` error.
    request_timeout_s: float = 30.0
    #: False = evaluate each request inline as it arrives (the unbatched
    #: baseline the serving benchmark compares against).
    batching: bool = True
    #: Admission control: refuse connections beyond this many concurrent
    #: clients with an ``unavailable`` reply (None = unlimited).
    max_connections: Optional[int] = None
    #: Admission control: shed evaluate requests once this many rows are
    #: parked across all batchers (None = unlimited).
    max_parked_rows: Optional[int] = None
    #: Evaluation backend the served models are pinned and pre-warmed to
    #: ("auto" lets the compiled layer pick; see :mod:`repro.dd.backends`).
    kernel: str = "auto"
    #: Fuse every codegen-eligible model into one shared library and
    #: drain *all* batchers in one foreign call per flush.  Falls back to
    #: per-model evaluation at startup if fusion is impossible.
    fused: bool = False
    #: Chaos hook: when set (cluster shard workers pass their shard
    #: index), every dispatched request consults the ``serve.shard.down``
    #: fault site with this token and hard-exits the process when it
    #: fires — simulating a shard dying mid-load.  None (the default)
    #: never consults the site, so standalone servers are immune.
    shard_fault_token: Optional[int] = None
    #: Requests slower than this end-to-end land in the slow-query log.
    slowlog_threshold_ms: float = 100.0
    #: Sampling probability for over-threshold requests (1.0 = keep all;
    #: lower it when a systemic slowdown would otherwise churn the ring
    #: buffer faster than anyone can read it).
    slowlog_rate: float = 1.0
    #: Ring-buffer capacity of the slow-query log.
    slowlog_capacity: int = 128
    #: When set, the server writes its Chrome-trace export (if tracing
    #: is enabled in this process) into this directory at shutdown as
    #: ``trace-<pid>-<port>.json`` — one file per process, assembled by
    #: ``repro trace-merge``.
    trace_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kernel != "auto":
            from repro.dd import backends as _backends

            _backends.get_backend(self.kernel)  # unknown name fails fast
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )
        if self.request_timeout_s <= 0:
            raise ValueError(
                f"request_timeout_s must be > 0, got {self.request_timeout_s}"
            )
        if self.max_connections is not None and self.max_connections < 1:
            raise ValueError(
                f"max_connections must be >= 1 or None, "
                f"got {self.max_connections}"
            )
        if self.max_parked_rows is not None and self.max_parked_rows < 1:
            raise ValueError(
                f"max_parked_rows must be >= 1 or None, "
                f"got {self.max_parked_rows}"
            )
        if self.slowlog_threshold_ms < 0:
            raise ValueError(
                f"slowlog_threshold_ms must be >= 0, "
                f"got {self.slowlog_threshold_ms}"
            )
        if not 0.0 <= self.slowlog_rate <= 1.0:
            raise ValueError(
                f"slowlog_rate must be in [0, 1], got {self.slowlog_rate}"
            )
        if self.slowlog_capacity < 1:
            raise ValueError(
                f"slowlog_capacity must be >= 1, got {self.slowlog_capacity}"
            )


@dataclass
class _Pending:
    """One parked evaluate request."""

    request_id: object
    writer: asyncio.StreamWriter
    initial: np.ndarray  # (P, n) bool
    final: np.ndarray  # (P, n) bool
    single: bool  # answer with a scalar instead of a list
    arrived: float
    deadline: float
    #: When the request was parked (== arrived for unbatched requests);
    #: parked - arrived is its queue wait, flush - parked its batch wait.
    parked: float = 0.0
    #: Distributed-trace identity of the request's wire hop, if any.
    #: On the non-recording hot path this is the *raw* traceparent
    #: header (str) — decoded lazily by the slow-query log.
    trace_ctx: "Union[TraceContext, str, None]" = None


class SlowQueryLog:
    """Sampled ring buffer of over-threshold requests' latency anatomy.

    A request whose end-to-end time exceeds the threshold is (with
    probability ``rate``) recorded as a structured entry — model, rows,
    the queue/batch/kernel/serialize decomposition, and the trace ids
    when the request was traced — into a bounded deque, so a burst of
    slow queries costs O(capacity) memory and the newest evidence wins.
    """

    def __init__(self, config: "ServerConfig"):
        self.threshold_s = config.slowlog_threshold_ms / 1e3
        self.rate = config.slowlog_rate
        self.capacity = config.slowlog_capacity
        self._entries: deque = deque(maxlen=config.slowlog_capacity)
        # Deterministic sampling stream, decoupled from user-visible rngs.
        self._rng = random.Random(0x510)
        self.sampled_out = 0

    def consider(
        self,
        item: "_Pending",
        model: AddPowerModel,
        rows: int,
        total_s: float,
        queue_s: float,
        batch_s: float,
        kernel_s: float,
        serialize_s: float,
    ) -> None:
        if total_s < self.threshold_s:
            return
        if self.rate < 1.0 and self._rng.random() >= self.rate:
            self.sampled_out += 1
            return
        entry = {
            "ts": time.time(),
            "request_id": item.request_id,
            "model": model.macro_name,
            "rows": rows,
            "total_ms": round(total_s * 1e3, 3),
            "queue_wait_ms": round(queue_s * 1e3, 3),
            "batch_wait_ms": round(batch_s * 1e3, 3),
            "kernel_ms": round(kernel_s * 1e3, 3),
            "serialize_ms": round(serialize_s * 1e3, 3),
        }
        ctx = item.trace_ctx
        if isinstance(ctx, str):  # deferred parse off the hot path
            ctx = TraceContext.from_traceparent(ctx)
        if isinstance(ctx, TraceContext):
            entry["trace_id"] = ctx.trace_id
            entry["span_id"] = ctx.span_id
        self._entries.append(entry)
        _SLOWLOG_ENTRIES.inc()

    def report(self) -> Dict:
        """The ``slowlog`` op's payload: knobs + entries, oldest first."""
        return {
            "threshold_ms": self.threshold_s * 1e3,
            "rate": self.rate,
            "capacity": self.capacity,
            "sampled_out": self.sampled_out,
            "entries": list(self._entries),
        }


class _Batcher:
    """Accumulates evaluate requests for one model between flushes."""

    __slots__ = ("model", "pending", "rows", "timer")

    def __init__(self, model: AddPowerModel):
        self.model = model
        self.pending: List[_Pending] = []
        self.rows = 0
        self.timer: Optional[asyncio.TimerHandle] = None


class PowerQueryServer:
    """Serve ``evaluate`` queries against a set of named power models."""

    def __init__(
        self,
        models: Dict[str, AddPowerModel],
        config: ServerConfig = ServerConfig(),
    ):
        if not models:
            raise ValueError("a PowerQueryServer needs at least one model")
        self.models = dict(models)
        self.config = config
        self.port: Optional[int] = None
        self.started_at: Optional[float] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._batchers: Dict[str, _Batcher] = {}
        #: Rows parked across every batcher (admission-control budget).
        self._parked_rows = 0
        self._writers: set = set()
        #: Writers with a flush-path drain task in flight (at most one each).
        self._draining: set = set()
        self._stop_event: Optional[asyncio.Event] = None
        self._stopping = False
        self.slowlog = SlowQueryLog(config)
        # Pre-compile every model and warm its evaluation backend so the
        # first query pays neither the O(model size) flattening nor a
        # backend's one-time setup (C compilation, table packing).
        for model in self.models.values():
            model.eval_kernel = config.kernel
            try:
                model.warm_eval_backend()
            except Exception:  # noqa: BLE001 - warm is an optimisation
                pass  # the query path degrades per batch instead
        #: Cross-model fused kernel (None = fusion off or unavailable).
        self._fused = self._build_fused() if config.fused else None

    def _build_fused(self):
        """Fuse every codegen-eligible model; None if fusion is impossible.

        Ineligible models simply stay outside the fusion (their flushes
        keep using the per-model path), so one oversized model does not
        cost the others the fused fast path.  A failed compilation
        disables fusion entirely — the server still works, per model.
        """
        from repro.dd.backends import FusedKernel, get_backend

        codegen = get_backend("codegen")
        eligible = {
            name: model.compiled()
            for name, model in self.models.items()
            if codegen.supports(model.compiled())
        }
        if not eligible:
            return None
        try:
            return FusedKernel(eligible)
        except Exception as exc:  # noqa: BLE001 - fusion is an optimisation
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "serve.fused.disabled",
                    error=f"{type(exc).__name__}: {exc}",
                )
            return None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()

    async def serve_forever(self) -> None:
        """Run until :meth:`request_stop` (or the ``shutdown`` op) fires."""
        if self._server is None:
            await self.start()
        assert self._stop_event is not None
        await self._stop_event.wait()
        await self.stop()

    def request_stop(self) -> None:
        """Ask the server loop to shut down (safe from within handlers)."""
        if self._stop_event is not None:
            self._stop_event.set()

    def reload_models(self, models: Dict[str, AddPowerModel]) -> None:
        """Swap the served model set without dropping a single request.

        Must run on the server's event loop (cluster workers schedule it
        via ``call_soon_threadsafe``).  Everything parked is flushed and
        answered against the *old* models first — a batch never mixes
        model generations — then the new set replaces the old atomically
        between requests, is pinned/warmed like at construction time, and
        the fused kernel is rebuilt if fusion is on.  Connections stay
        open throughout; only requests naming a model absent from the new
        set start failing (with ``unknown_model``, as for any bad name).
        """
        if not models:
            raise ValueError("reload_models needs at least one model")
        for name in list(self._batchers):
            self._flush(name)
        self._batchers.clear()
        self._parked_rows = 0
        self.models = dict(models)
        for model in self.models.values():
            model.eval_kernel = self.config.kernel
            try:
                model.warm_eval_backend()
            except Exception:  # noqa: BLE001 - warm is an optimisation
                pass
        self._fused = self._build_fused() if self.config.fused else None
        _RELOADS.inc()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, flush, answer, drain, close."""
        if self._stopping:
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Answer everything still parked, then *drain* before closing.
        # The flush writes replies from this coroutine with no connection
        # loop left to await them; without an explicit drain the event
        # loop can exit with those replies still sitting in transport
        # buffers, silently dropping in-flight batched requests that
        # raced ``stop()`` against a pending micro-batch flush.
        for name in list(self._batchers):
            self._flush(name)
        writers = list(self._writers)
        if writers:
            try:
                await asyncio.wait_for(
                    asyncio.gather(
                        *(self._drain_writer(writer) for writer in writers),
                        return_exceptions=True,
                    ),
                    timeout=5.0,
                )
            except asyncio.TimeoutError:  # pragma: no cover - stuck client
                pass
        for writer in writers:
            try:
                writer.close()
            except Exception:  # pragma: no cover - already-broken transport
                pass
        self._writers.clear()
        self._write_trace_file()

    def _write_trace_file(self) -> None:
        """Export this process's spans for ``repro trace-merge`` pickup."""
        if not self.config.trace_dir:
            return
        tracer = get_tracer()
        if not tracer.enabled or not hasattr(tracer, "write_chrome"):
            return
        try:
            os.makedirs(self.config.trace_dir, exist_ok=True)
            tracer.write_chrome(
                os.path.join(
                    self.config.trace_dir,
                    f"trace-{os.getpid()}-{self.port}.json",
                )
            )
        except OSError:  # noqa: BLE001 - telemetry must not fail shutdown
            pass

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        limit = self.config.max_connections
        if limit is not None and len(self._writers) >= limit:
            # Admission control: answer with a structured shed instead of
            # letting the connection join the writer set.
            _SHED_CONNECTIONS.inc()
            self._send(
                writer,
                protocol.error_response(
                    None,
                    "unavailable",
                    f"connection limit reached ({limit} clients)",
                ),
            )
            try:
                await writer.drain()
                writer.close()
            except (ConnectionError, RuntimeError):  # pragma: no cover
                pass
            return
        _CONNECTIONS.inc()
        self._writers.add(writer)
        try:
            while not self._stopping:
                try:
                    line = await reader.readline()
                except asyncio.CancelledError:
                    # Loop teardown during shutdown cancels handlers still
                    # parked on readline; exit cleanly so the cancellation
                    # doesn't surface as a stream-callback traceback.
                    break
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                ):  # oversized line: answer and drop the connection
                    self._send(
                        writer,
                        protocol.error_response(
                            None, "protocol", "request line too long"
                        ),
                    )
                    break
                except ConnectionError:
                    break
                if not line:
                    break  # client closed
                if line.strip() == b"":
                    continue
                if faults.fires("serve.connection.reset"):
                    # Chaos hook: drop the client mid-request the way a
                    # flaky network would — abort, no FIN, no reply.
                    writer.transport.abort()
                    break
                await self._dispatch(line, writer)
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except Exception:  # pragma: no cover
                pass

    def _schedule_drain(self, writers) -> None:
        """Backpressure for responses written outside a read loop.

        Timer-driven flushes and ``stop()`` answer requests from a plain
        callback, bypassing the connection loop's ``await drain()``; a
        stalled client pipelining many evaluate requests could otherwise
        grow its write buffer without bound.  Schedule one drain task
        per distinct writer (skipping writers that already have one).
        """
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:  # pragma: no cover - stop() outside the loop
            return
        for writer in writers:
            if writer.is_closing() or writer in self._draining:
                continue
            self._draining.add(writer)
            loop.create_task(self._drain_writer(writer))

    async def _drain_writer(self, writer: asyncio.StreamWriter) -> None:
        try:
            await writer.drain()
        except (ConnectionError, RuntimeError):  # pragma: no cover
            pass
        finally:
            self._draining.discard(writer)

    def _send(self, writer: asyncio.StreamWriter, response: Dict) -> None:
        if writer.is_closing():
            return
        if not response.get("ok", False):
            _ERRORS.inc()
        try:
            writer.write(protocol.encode(response))
        except ConnectionError:  # pragma: no cover - racing disconnect
            pass

    async def _dispatch(
        self, line: bytes, writer: asyncio.StreamWriter
    ) -> None:
        if self.config.shard_fault_token is not None and faults.fires(
            "serve.shard.down", token=self.config.shard_fault_token
        ):
            # Chaos hook: the shard dies the way a crashed/OOM-killed
            # worker would — no reply, no graceful close, no cleanup.
            os._exit(23)
        _REQUESTS.inc()
        arrived = time.perf_counter()
        request_id = None
        try:
            request = protocol.decode_request(line)
            request_id = request.get("id")
            op = request["op"]
            tracer = get_tracer()
            if not tracer.record:
                # Untraced, or propagation-only: the raw header (when
                # present) travels *unparsed* to the slow-query log via
                # ``_Pending.trace_ctx`` and is only decoded for the
                # rare sampled entry — the always-on hot path neither
                # parses nor allocates.
                self._dispatch_op(
                    op,
                    request,
                    request_id,
                    writer,
                    arrived,
                    request.get("traceparent"),
                )
            else:
                context = TraceContext.from_traceparent(
                    request.get("traceparent")
                )
                if context is None:
                    self._dispatch_op(
                        op, request, request_id, writer, arrived, None
                    )
                else:
                    # Honour the caller's trace: while this context is
                    # active, every span the tracer opens (the request
                    # span here, per-model flush spans later via
                    # _Pending) is stamped with the caller's trace_id,
                    # parented on its wire hop.
                    with use_trace_context(context):
                        with tracer.span("serve.request", op=op):
                            self._dispatch_op(
                                op,
                                request,
                                request_id,
                                writer,
                                arrived,
                                context,
                            )
        except ProtocolError as exc:
            self._send(
                writer,
                protocol.error_response(request_id, exc.error_type, str(exc)),
            )
        except Exception as exc:  # noqa: BLE001 - answer, don't crash the loop
            self._send(
                writer,
                protocol.error_response(
                    request_id, "internal", f"{type(exc).__name__}: {exc}"
                ),
            )

    def _dispatch_op(
        self,
        op: str,
        request: Dict,
        request_id,
        writer: asyncio.StreamWriter,
        arrived: float,
        context: "Union[TraceContext, str, None]" = None,
    ) -> None:
        if op == "evaluate":
            self._handle_evaluate(request, writer, arrived, context)
        elif op == "ping":
            self._send(writer, protocol.ok_response(request_id, "pong"))
        elif op == "models":
            self._send(
                writer,
                protocol.ok_response(
                    request_id,
                    [
                        protocol.model_summary(name, model)
                        for name, model in sorted(self.models.items())
                    ],
                ),
            )
        elif op == "stats":
            self._send(
                writer, protocol.ok_response(request_id, self._stats())
            )
        elif op == "slowlog":
            self._send(
                writer,
                protocol.ok_response(request_id, self.slowlog.report()),
            )
        elif op == "healthz":
            self._send(
                writer, protocol.ok_response(request_id, self._healthz())
            )
        elif op == "shutdown":
            self._send(writer, protocol.ok_response(request_id, "stopping"))
            self.request_stop()
        else:
            raise ProtocolError("bad_request", f"unknown op {op!r}")

    # ------------------------------------------------------------------
    # Evaluate path
    # ------------------------------------------------------------------
    def _handle_evaluate(
        self,
        request: Dict,
        writer: asyncio.StreamWriter,
        arrived: float,
        context: "Union[TraceContext, str, None]" = None,
    ) -> None:
        if self._stopping:
            raise ProtocolError("unavailable", "server is shutting down")
        name = protocol.require_field(request, "model")
        model = self.models.get(name)
        if model is None:
            raise ProtocolError(
                "unknown_model",
                f"no model {name!r} (serving: {sorted(self.models)})",
            )
        initial, final = protocol.parse_transitions(request, model.num_inputs)
        single = "pairs" not in request
        rows = int(initial.shape[0])
        budget = self.config.max_parked_rows
        if (
            budget is not None
            and self.config.batching
            and self.config.max_batch > 1
            and self._parked_rows + rows > budget
        ):
            _SHED_REQUESTS.inc()
            _SHED_ROWS.inc(rows)
            raise ProtocolError(
                "unavailable",
                f"overloaded: {self._parked_rows} rows parked "
                f"(budget {budget}); retry later",
            )
        _EVAL_REQUESTS.inc()
        # An end-to-end deadline on the envelope caps this server's own
        # parking budget: never hold a request past the moment its
        # caller stops listening.  ``_Pending.deadline`` is on the
        # perf_counter clock, so the wire remainder is rebased here.
        timeout_s = self.config.request_timeout_s
        wire_deadline = Deadline.from_request(request)
        if wire_deadline is not None:
            remaining = wire_deadline.remaining_s()
            if remaining <= 0.0:
                raise ProtocolError(
                    "timeout", "end-to-end deadline expired on arrival"
                )
            timeout_s = min(timeout_s, remaining)
        pending = _Pending(
            request_id=request.get("id"),
            writer=writer,
            initial=initial,
            final=final,
            single=single,
            arrived=arrived,
            deadline=arrived + timeout_s,
            parked=time.perf_counter(),
            trace_ctx=context,
        )
        if not self.config.batching or self.config.max_batch <= 1:
            self._evaluate([pending], model)
            return
        batcher = self._batchers.get(name)
        if batcher is None:
            batcher = self._batchers[name] = _Batcher(model)
        batcher.pending.append(pending)
        batcher.rows += rows
        self._parked_rows += rows
        if batcher.rows >= self.config.max_batch:
            self._flush(name)
        elif batcher.timer is None:
            loop = asyncio.get_running_loop()
            batcher.timer = loop.call_later(
                self.config.max_wait_ms / 1000.0, self._flush, name
            )

    def _flush(self, name: str) -> None:
        """Answer every request parked for one model in a single kernel call.

        With fusion active, any flush trigger drains *every* batcher: the
        fused library answers all models' parked rows in one foreign
        call, so riding along is cheaper than waiting for their own
        timers.
        """
        if self._fused is not None:
            self._flush_fused()
            return
        pending = self._drain(name)
        if pending:
            self._evaluate(pending, self._batchers[name].model)

    def _drain(self, name: str) -> List[_Pending]:
        """Detach one batcher's parked requests (cancelling its timer)."""
        batcher = self._batchers.get(name)
        if batcher is None or not batcher.pending:
            return []
        if batcher.timer is not None:
            batcher.timer.cancel()
            batcher.timer = None
        self._parked_rows = max(0, self._parked_rows - batcher.rows)
        pending, batcher.pending, batcher.rows = batcher.pending, [], 0
        return pending

    def _flush_fused(self) -> None:
        """Drain all batchers and answer them with one fused kernel call.

        Models outside the fusion (codegen-ineligible) are evaluated on
        the per-model path in the same flush; a fused-call failure also
        degrades every segment to the per-model path, so requests are
        always answered.
        """
        assert self._fused is not None
        drained = [
            (name, pending)
            for name in list(self._batchers)
            for pending in [self._drain(name)]
            if pending
        ]
        if not drained:
            return
        writers = {item.writer for _, pending in drained for item in pending}
        try:
            segments: List[Tuple[str, List[_Pending], np.ndarray]] = []
            leftover: List[Tuple[List[_Pending], AddPowerModel]] = []
            for name, pending in drained:
                model = self.models[name]
                if name not in self._fused:
                    leftover.append((pending, model))
                    continue
                live = self._filter_live(pending)
                if not live:
                    continue
                initial = np.concatenate([item.initial for item in live])
                final = np.concatenate([item.final for item in live])
                segments.append((name, live, model._pack_batch(initial, final)))
            if segments:
                faults.maybe_delay("serve.eval.slow")
                tracer = get_tracer()
                total = sum(packed.shape[0] for _, _, packed in segments)
                all_live = [
                    item for _, live, _ in segments for item in live
                ]
                attrs = self._batch_trace_attrs(tracer, all_live)
                flush_start = time.perf_counter()
                try:
                    with tracer.span(
                        "serve.eval.fused",
                        segments=len(segments),
                        rows=total,
                        **attrs,
                    ):
                        outs = self._fused.evaluate_many(
                            [(name, packed) for name, _, packed in segments]
                        )
                except Exception:  # noqa: BLE001 - degrade, don't drop
                    for name, live, _ in segments:
                        leftover.append((live, self.models[name]))
                else:
                    kernel_s = time.perf_counter() - flush_start
                    _KERNEL_SECONDS.observe(kernel_s)
                    _FUSED_BATCHES.inc()
                    _FUSED_SEGMENTS.inc(len(segments))
                    for (name, live, packed), values in zip(segments, outs):
                        _EVAL_BATCHES.inc()
                        _EVAL_ROWS.inc(int(packed.shape[0]))
                        _BATCH_ROWS.observe(len(live))
                        self._respond(
                            live, values, self.models[name],
                            flush_start, kernel_s,
                        )
            for pending, model in leftover:
                self._evaluate_now(pending, model)
        finally:
            self._schedule_drain(writers)

    def _evaluate(self, pending: List[_Pending], model: AddPowerModel) -> None:
        try:
            self._evaluate_now(pending, model)
        finally:
            # Inline (unbatched) evaluation is drained by the connection
            # loop itself; timer/shutdown flushes have no awaiting loop,
            # so push the backpressure from here.
            self._schedule_drain({item.writer for item in pending})

    def _filter_live(self, pending: List[_Pending]) -> List[_Pending]:
        """Answer expired requests with a timeout error; return the rest."""
        now = time.perf_counter()
        live: List[_Pending] = []
        for item in pending:
            if now > item.deadline:
                _TIMEOUTS.inc()
                self._send(
                    item.writer,
                    protocol.error_response(
                        item.request_id,
                        "timeout",
                        f"request expired after "
                        f"{self.config.request_timeout_s:.3f}s in queue",
                    ),
                )
            else:
                live.append(item)
        return live

    @staticmethod
    def _batch_trace_attrs(tracer, live: List[_Pending]) -> Dict:
        """``trace_ids`` attr for batch-level spans (flush, kernel calls).

        A batch serves several traces at once, so batch spans carry the
        whole id set; :func:`repro.obs.trace.merge_chrome_traces` matches
        either a span's own ``trace_id`` or membership in ``trace_ids``.
        """
        if not tracer.record:
            return {}
        ids = set()
        for item in live:
            ctx = item.trace_ctx
            if isinstance(ctx, str):
                # Queued before recording was switched on: the header
                # is still raw — parse it now.
                ctx = TraceContext.from_traceparent(ctx)
            if isinstance(ctx, TraceContext):
                ids.add(ctx.trace_id)
        return {"trace_ids": sorted(ids)} if ids else {}

    def _evaluate_now(
        self, pending: List[_Pending], model: AddPowerModel
    ) -> None:
        live = self._filter_live(pending)
        if not live:
            return
        # Chaos hook: a slow kernel evaluation (big batch, cold cache).
        faults.maybe_delay("serve.eval.slow")
        initial = np.concatenate([item.initial for item in live])
        final = np.concatenate([item.final for item in live])
        tracer = get_tracer()
        attrs = self._batch_trace_attrs(tracer, live)
        flush_start = time.perf_counter()
        with tracer.span(
            "serve.batch.flush",
            model=model.macro_name,
            requests=len(live),
            **attrs,
        ):
            try:
                with tracer.span(
                    "serve.eval",
                    model=model.macro_name,
                    rows=initial.shape[0],
                    **attrs,
                ):
                    values = model.pair_capacitances(initial, final)
            except Exception as exc:  # noqa: BLE001 - typed error per request
                for item in live:
                    self._send(
                        item.writer,
                        protocol.error_response(
                            item.request_id,
                            "internal",
                            f"evaluation failed: {type(exc).__name__}: {exc}",
                        ),
                    )
                return
            kernel_s = time.perf_counter() - flush_start
            _KERNEL_SECONDS.observe(kernel_s)
            _EVAL_BATCHES.inc()
            _EVAL_ROWS.inc(int(initial.shape[0]))
            _BATCH_ROWS.observe(len(live))
            self._respond(live, values, model, flush_start, kernel_s)

    def _respond(
        self,
        live: List[_Pending],
        values: np.ndarray,
        model: AddPowerModel,
        flush_start: float,
        kernel_s: float,
    ) -> None:
        """Slice one batch result back into per-request replies.

        Also the accounting point of the latency anatomy: each answered
        request's queue/batch/serialize segments are observed here, its
        total recorded, and over-threshold requests offered to the
        slow-query log.
        """
        offset = 0
        for item in live:
            count = item.initial.shape[0]
            chunk = values[offset : offset + count]
            offset += count
            if item.single:
                result = {"capacitance_fF": float(chunk[0])}
            else:
                result = {"capacitances_fF": [float(v) for v in chunk]}
            serialize_start = time.perf_counter()
            self._send(item.writer, protocol.ok_response(item.request_id, result))
            done = time.perf_counter()
            queue_s = max(0.0, item.parked - item.arrived)
            batch_s = max(0.0, flush_start - item.parked)
            serialize_s = done - serialize_start
            total_s = done - item.arrived
            _QUEUE_WAIT.observe(queue_s)
            _BATCH_WAIT.observe(batch_s)
            _SERIALIZE_SECONDS.observe(serialize_s)
            _REQUEST_SECONDS.observe(total_s)
            self.slowlog.consider(
                item, model, count, total_s,
                queue_s, batch_s, kernel_s, serialize_s,
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _stats(self) -> Dict:
        snapshot = _MET.snapshot()
        return {
            "models": sorted(self.models),
            "uptime_seconds": (
                time.time() - self.started_at if self.started_at else 0.0
            ),
            "config": {
                "max_batch": self.config.max_batch,
                "max_wait_ms": self.config.max_wait_ms,
                "batching": self.config.batching,
                "request_timeout_s": self.config.request_timeout_s,
                "max_connections": self.config.max_connections,
                "max_parked_rows": self.config.max_parked_rows,
                "kernel": self.config.kernel,
                "fused": self.config.fused,
                "slowlog_threshold_ms": self.config.slowlog_threshold_ms,
                "slowlog_rate": self.config.slowlog_rate,
            },
            "fused_models": sorted(self._fused.keys) if self._fused else [],
            "metrics": {
                name: state
                for name, state in snapshot.items()
                if name.startswith(
                    ("serve.", "compiled.eval", "eval.", "build.", "faults.")
                )
            },
        }

    def _healthz(self) -> Dict:
        """Liveness/saturation summary for probes and load balancers."""

        snapshot = _MET.snapshot()

        def count(name: str) -> int:
            state = snapshot.get(name)
            return int(state["value"]) if state else 0

        return {
            "status": "stopping" if self._stopping else "ok",
            "uptime_seconds": (
                time.time() - self.started_at if self.started_at else 0.0
            ),
            "models": len(self.models),
            "connections": len(self._writers),
            "parked_rows": self._parked_rows,
            "parked_requests": sum(
                len(batcher.pending) for batcher in self._batchers.values()
            ),
            "limits": {
                "max_connections": self.config.max_connections,
                "max_parked_rows": self.config.max_parked_rows,
            },
            "shed": {
                "connections": count("serve.shed.connections"),
                "requests": count("serve.shed.requests"),
                "rows": count("serve.shed.rows"),
            },
            "degraded_builds": count("build.degraded.count"),
            "timeouts": count("serve.timeouts"),
        }


# ---------------------------------------------------------------------------
# Thread-hosted servers (tests, CLI foreground helpers, benchmarks)
# ---------------------------------------------------------------------------
@dataclass
class ServerHandle:
    """A server running on a private event loop in a daemon thread."""

    server: PowerQueryServer
    thread: threading.Thread
    loop: asyncio.AbstractEventLoop
    host: str = field(init=False)
    port: int = field(init=False)

    def __post_init__(self) -> None:
        self.host = self.server.config.host
        assert self.server.port is not None
        self.port = self.server.port

    def stop(self, timeout: float = 10.0) -> None:
        """Request a graceful shutdown and join the server thread."""
        try:
            self.loop.call_soon_threadsafe(self.server.request_stop)
        except RuntimeError:  # loop already closed
            pass
        self.thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_thread(
    models: Dict[str, AddPowerModel],
    config: ServerConfig = ServerConfig(),
    ready_timeout: float = 30.0,
) -> ServerHandle:
    """Run a :class:`PowerQueryServer` in a daemon thread; returns a handle.

    The handle exposes the bound ``host``/``port`` and a blocking
    :meth:`ServerHandle.stop`.  Exceptions during startup propagate to
    the caller.
    """
    server = PowerQueryServer(models, config)
    ready = threading.Event()
    box: Dict[str, object] = {}

    async def _main() -> None:
        try:
            await server.start()
        except Exception as exc:  # noqa: BLE001 - surface to caller
            box["error"] = exc
            ready.set()
            return
        box["loop"] = asyncio.get_running_loop()
        ready.set()
        await server.serve_forever()

    thread = threading.Thread(
        target=lambda: asyncio.run(_main()), name="power-query-server", daemon=True
    )
    thread.start()
    if not ready.wait(ready_timeout):
        raise TimeoutError("power-query server did not start in time")
    if "error" in box:
        thread.join(1.0)
        raise box["error"]  # type: ignore[misc]
    return ServerHandle(server=server, thread=thread, loop=box["loop"])  # type: ignore[arg-type]
