"""Crash-durable state: an append-only write-ahead log with snapshots.

The control plane (build queue, object store index) keeps its working
state in memory for speed, but every state transition is journaled here
*before* it is acknowledged — so a SIGKILL at any instant loses at most
un-acked work, never acked work.  The design is the classic WAL +
checkpoint pair:

- ``<name>.log`` — an append-only file of CRC32-framed records.  Each
  frame is ``<length:u32 LE> <crc32:u32 LE> <payload>`` where the
  payload is one JSON object wrapped as ``{"lsn": N, "rec": {...}}``.
  Appends are flushed and (by default) ``fsync``\\ ed, so an acked
  record survives the process *and* the page cache.
- ``<name>.snapshot`` — a JSON checkpoint of the full state at some
  log sequence number (LSN), written atomically via temp file +
  :func:`os.replace` (the same idiom as the store manifest) and
  self-verified with an embedded SHA-256.  Compaction writes the
  snapshot first, then truncates the log — a crash between the two
  steps just replays records the snapshot already covers, and the LSN
  ordering makes that replay a no-op.

Replay (:meth:`WriteAheadLog.recover`) tolerates exactly the failure
modes a crashed writer produces: a **torn tail** (the process died
mid-append, leaving a partial frame) is detected by the length/CRC
framing and truncated away; any later bytes are unreachable by
construction, so recovery is deterministic — recovering twice yields
byte-identical state.  A corrupt *snapshot* (torn ``os.replace`` is
impossible, but disks lie) fails its checksum and is ignored, degrading
to a full-log replay when the log still holds the records.

Chaos sites: ``wal.torn_tail`` (an append writes only a prefix of its
frame, then raises — the on-disk image of a crash mid-write) and
``wal.fsync_fail`` (the durability fsync raises an OSError, as a full
or failing disk would).
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.obs.metrics import get_metrics
from repro.testing import faults

_MET = get_metrics()
_APPENDS = _MET.counter("wal.appends")
_FSYNCS = _MET.counter("wal.fsyncs")
_COMPACTIONS = _MET.counter("wal.compactions")
_REPLAYED = _MET.counter("wal.records_replayed")
_TRUNCATIONS = _MET.counter("wal.torn_tail_truncations")
_TRUNCATED_BYTES = _MET.counter("wal.truncated_bytes")
_SNAPSHOT_REJECTS = _MET.counter("wal.snapshot_rejects")

#: Frame header: payload length, then CRC32 of the payload (LE u32 each).
_HEADER = struct.Struct("<II")

#: A frame's payload may not exceed this (corrupt length-field guard: a
#: bit flip in the length must not provoke a gigabyte allocation).
MAX_RECORD_BYTES = 16 * 1024 * 1024


class WalError(ReproError):
    """The write-ahead log could not satisfy a durability guarantee."""


def _encode_frame(payload: bytes) -> bytes:
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


class WriteAheadLog:
    """One durable log + snapshot pair under a directory.

    Not thread-safe by design: the owners (asyncio control-plane
    servers) funnel every mutation through a single event loop, so the
    log inherits that serialisation for free.
    """

    def __init__(
        self,
        directory: "str | Path",
        name: str = "wal",
        fsync: bool = True,
        compact_every: int = 1024,
    ):
        if compact_every < 1:
            raise WalError(f"compact_every must be >= 1, got {compact_every}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.name = name
        self.fsync = fsync
        self.compact_every = compact_every
        self.log_path = self.directory / f"{name}.log"
        self.snapshot_path = self.directory / f"{name}.snapshot"
        #: LSN of the last durable record (snapshot or log tail).
        self.lsn = 0
        #: Appends since the last compaction (drives ``should_compact``).
        self.records_since_compact = 0
        self._handle = None

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self) -> Tuple[Optional[Dict], List[Dict]]:
        """Load the snapshot and replay the log tail; returns both.

        Returns ``(snapshot_state, tail_records)`` where the snapshot
        state is ``None`` when no (valid) snapshot exists, and the tail
        records are exactly the journaled records *after* the snapshot's
        LSN, in append order.  A torn or corrupt log tail is truncated
        on disk as a side effect, so a subsequent append continues from
        the last intact frame.  Idempotent: recovering an untouched log
        twice yields identical results.
        """
        self._close_handle()
        snapshot = self._load_snapshot()
        snapshot_lsn = int(snapshot["lsn"]) if snapshot is not None else 0
        records, valid_bytes, total_bytes = self._scan_log()
        if valid_bytes < total_bytes:
            _TRUNCATIONS.inc()
            _TRUNCATED_BYTES.inc(total_bytes - valid_bytes)
            with open(self.log_path, "r+b") as handle:
                handle.truncate(valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        # Skip any record that does not advance the LSN: records the
        # snapshot already covers, and duplicate frames left by an
        # append whose fsync failed after the write landed (the caller
        # saw an error, did not ack, and retried with the same LSN).
        tail: List[Dict] = []
        seen_lsn = snapshot_lsn
        for entry in records:
            if entry["lsn"] <= seen_lsn:
                continue
            seen_lsn = entry["lsn"]
            tail.append(entry["rec"])
        _REPLAYED.inc(len(tail))
        self.lsn = max(
            snapshot_lsn, records[-1]["lsn"] if records else 0
        )
        self.records_since_compact = len(tail)
        state = snapshot["state"] if snapshot is not None else None
        return state, tail

    def _load_snapshot(self) -> Optional[Dict]:
        """The snapshot envelope, or None when absent/corrupt."""
        try:
            raw = self.snapshot_path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            _SNAPSHOT_REJECTS.inc()
            return None
        try:
            envelope = json.loads(raw.decode("utf-8"))
            body = json.dumps(
                envelope["state"], sort_keys=True, separators=(",", ":")
            )
            digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
            if digest != envelope["sha256"]:
                raise ValueError("snapshot checksum mismatch")
            int(envelope["lsn"])
        except (KeyError, TypeError, ValueError, UnicodeDecodeError):
            # A lying disk, not a torn write (os.replace is atomic):
            # reject the checkpoint and fall back to full-log replay.
            _SNAPSHOT_REJECTS.inc()
            return None
        return envelope

    def _scan_log(self) -> Tuple[List[Dict], int, int]:
        """Parse frames until the first torn/corrupt one.

        Returns ``(entries, valid_bytes, total_bytes)``: every intact
        ``{"lsn", "rec"}`` envelope in order, the byte offset of the
        end of the last intact frame, and the file size.  Anything after
        the first bad frame is unreachable — a crash corrupts only the
        tail, and a mid-file flip makes everything after it untrusted.
        """
        try:
            blob = self.log_path.read_bytes()
        except FileNotFoundError:
            return [], 0, 0
        entries: List[Dict] = []
        offset = 0
        while True:
            header_end = offset + _HEADER.size
            if header_end > len(blob):
                break  # torn header
            length, crc = _HEADER.unpack_from(blob, offset)
            payload_end = header_end + length
            if length > MAX_RECORD_BYTES or payload_end > len(blob):
                break  # absurd length (corrupt) or torn payload
            payload = blob[header_end:payload_end]
            if zlib.crc32(payload) != crc:
                break  # bit-flipped frame
            try:
                envelope = json.loads(payload.decode("utf-8"))
                lsn = int(envelope["lsn"])
                record = envelope["rec"]
            except (KeyError, TypeError, ValueError, UnicodeDecodeError):
                break  # CRC passed but the payload is not ours
            if not isinstance(record, dict):
                break
            entries.append({"lsn": lsn, "rec": record})
            offset = payload_end
        return entries, offset, len(blob)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _open_handle(self):
        if self._handle is None:
            self._handle = open(self.log_path, "ab")
        return self._handle

    def _close_handle(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - close of a dying handle
                pass
            self._handle = None

    def append(self, record: Dict) -> int:
        """Durably journal one record; returns its LSN.

        The record is framed, written, flushed and fsynced before this
        method returns — the caller may ack only after it does.  On any
        failure the in-memory LSN is *not* advanced and the connection
        to the file is dropped, so a retry re-appends cleanly (replay
        tolerates the torn garbage the failed attempt may have left).
        """
        lsn = self.lsn + 1
        payload = json.dumps(
            {"lsn": lsn, "rec": record}, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        if len(payload) > MAX_RECORD_BYTES:
            raise WalError(
                f"record of {len(payload)} bytes exceeds "
                f"MAX_RECORD_BYTES ({MAX_RECORD_BYTES})"
            )
        frame = _encode_frame(payload)
        handle = self._open_handle()
        try:
            spec = faults.check("wal.torn_tail")
            if spec is not None:
                # Chaos hook: the process "dies" mid-append — a prefix
                # of the frame reaches the disk, then the write fails.
                handle.write(frame[: max(1, len(frame) // 2)])
                handle.flush()
                raise spec.exception()
            handle.write(frame)
            handle.flush()
            if self.fsync:
                faults.maybe_fail("wal.fsync_fail")
                os.fsync(handle.fileno())
                _FSYNCS.inc()
        except OSError:
            self._close_handle()
            raise
        self.lsn = lsn
        self.records_since_compact += 1
        _APPENDS.inc()
        return lsn

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    @property
    def should_compact(self) -> bool:
        """True once enough records accumulated to warrant a checkpoint."""
        return self.records_since_compact >= self.compact_every

    def compact(self, state: Dict) -> None:
        """Checkpoint ``state`` at the current LSN and truncate the log.

        Snapshot first (atomic ``os.replace``), truncate second: a crash
        between the two leaves snapshot + stale log, and replay skips
        every record whose LSN the snapshot already covers.
        """
        body = json.dumps(state, sort_keys=True, separators=(",", ":"))
        envelope = json.dumps(
            {
                "lsn": self.lsn,
                "state": state,
                "sha256": hashlib.sha256(body.encode("utf-8")).hexdigest(),
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        handle, temp = tempfile.mkstemp(
            dir=str(self.directory), prefix=self.snapshot_path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(envelope)
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(temp, self.snapshot_path)
        except BaseException:
            try:
                os.unlink(temp)
            except OSError:
                pass
            raise
        self._close_handle()
        with open(self.log_path, "wb") as stream:
            stream.flush()
            os.fsync(stream.fileno())
        self.records_since_compact = 0
        _COMPACTIONS.inc()

    def maybe_compact(self, state: Dict) -> bool:
        """Compact iff the threshold is reached; True iff it did."""
        if not self.should_compact:
            return False
        self.compact(state)
        return True

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> Dict:
        """Durability corner of a server's ``stats`` payload."""
        try:
            log_bytes = self.log_path.stat().st_size
        except OSError:
            log_bytes = 0
        return {
            "lsn": self.lsn,
            "records_since_compact": self.records_since_compact,
            "compact_every": self.compact_every,
            "fsync": self.fsync,
            "log_bytes": log_bytes,
            "has_snapshot": self.snapshot_path.exists(),
        }

    def close(self) -> None:
        self._close_handle()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["MAX_RECORD_BYTES", "WalError", "WriteAheadLog"]
