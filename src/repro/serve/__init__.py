"""Serving subsystem: model persistence and the power-query service.

Builds the bridge from "a model can be constructed" to "models are an
operational service":

- :mod:`repro.serve.store` — :class:`ModelStore`, a content-addressed
  on-disk + in-memory cache of serialised ADD power models keyed by
  ``sha256(canonical netlist, build config)``, with atomic writes, a
  rebuildable manifest, an LRU byte budget and a ``get_or_build`` path
  that fans misses out through
  :func:`~repro.models.addmodel.build_add_models_parallel`;
- :mod:`repro.serve.server` — :class:`PowerQueryServer`, an asyncio
  JSON-lines-over-TCP server that micro-batches concurrent ``evaluate``
  requests per model into single compiled-kernel calls;
- :mod:`repro.serve.client` — :class:`PowerQueryClient` (blocking) and
  :func:`generate_load` (concurrent load generator);
- :mod:`repro.serve.cluster` — the scale-out tier: :class:`Cluster`
  (consistent-hash :class:`HashRing` over forked shard worker
  processes, a control-plane router with liveness monitoring and
  cluster-wide metric aggregation) plus the shard-aware
  :class:`ClusterClient` / :func:`generate_cluster_load`;
- :mod:`repro.serve.storage` — pluggable :class:`StoreBackend`\\ s
  (:class:`LocalDirBackend`, :class:`ObjectStoreBackend`) plus
  :func:`sync_stores`, store-to-store replication with content-hash
  verification;
- :mod:`repro.serve.objectstore` — :class:`ObjectStoreServer`, the
  minimal S3-style object server the remote backend speaks to;
- :mod:`repro.serve.queue` — the distributed build pipeline:
  :class:`BuildQueueServer` (leases, heartbeats, content-key dedupe,
  exactly-once publish), :func:`run_worker` / :class:`WorkerFarm`, and
  the telemetry-driven :class:`StoreWarmer`;
- :mod:`repro.serve.wal` — :class:`WriteAheadLog`, the CRC-framed
  append-only journal + atomic snapshots the queue and the object
  store's persistent index recover from after SIGKILL;
- :mod:`repro.serve.supervise` — :class:`Supervisor`, restart-with-
  backoff process supervision for the control plane;
- :mod:`repro.serve.breaker` — :class:`CircuitBreaker`, the shared
  per-endpoint breaker that lets callers degrade to local builds
  instead of hammering a dead endpoint;
- :mod:`repro.serve.protocol` — the wire format (including the
  end-to-end ``deadline_ms`` budget carried by :class:`Deadline`) and
  its structured errors.

CLI entry points: ``repro serve`` (``--workers N`` for a cluster),
``repro query``, ``repro cluster-stats``, ``repro store`` (with
``sync`` / ``serve-objects``) and ``repro queue``; the numbers live in
``benchmarks/bench_serving.py`` / DESIGN.md §10+§13+§15.
"""

from repro.serve.client import (
    LoadReport,
    PowerQueryClient,
    RetryPolicy,
    generate_load,
)
from repro.serve.cluster import (
    Cluster,
    ClusterClient,
    ClusterConfig,
    HashRing,
    generate_cluster_load,
    placement_key,
    start_cluster,
)
from repro.serve.breaker import (
    CircuitBreaker,
    breaker_for,
    breaker_states,
    reset_breakers,
)
from repro.serve.protocol import (
    ERROR_TYPES,
    MAX_LINE_BYTES,
    Deadline,
    ProtocolError,
    ResponseError,
)
from repro.serve.supervise import Supervisor
from repro.serve.wal import WalError, WriteAheadLog
from repro.serve.server import (
    PowerQueryServer,
    ServerConfig,
    ServerHandle,
    start_in_thread,
)
from repro.serve.objectstore import (
    ObjectStoreConfig,
    ObjectStoreHandle,
    ObjectStoreServer,
    start_object_store,
)
from repro.serve.queue import (
    BuildQueueClient,
    BuildQueueServer,
    QueueConfig,
    QueueHandle,
    StoreWarmer,
    WorkerFarm,
    run_worker,
    start_queue,
)
from repro.serve.storage import (
    BACKENDS,
    LocalDirBackend,
    ObjectStoreBackend,
    StoreBackend,
    SyncReport,
    open_backend,
    register_backend,
    sync_stores,
)
from repro.serve.store import (
    DEFAULT_MEMORY_BUDGET_BYTES,
    ModelStore,
    PrefetchReport,
    StoreEntry,
    canonical_build_config,
    store_key,
    store_key_from_canonical,
)

__all__ = [
    # store
    "ModelStore",
    "StoreEntry",
    "PrefetchReport",
    "store_key",
    "store_key_from_canonical",
    "canonical_build_config",
    "DEFAULT_MEMORY_BUDGET_BYTES",
    # storage backends
    "StoreBackend",
    "LocalDirBackend",
    "ObjectStoreBackend",
    "BACKENDS",
    "register_backend",
    "open_backend",
    "sync_stores",
    "SyncReport",
    # object store server
    "ObjectStoreServer",
    "ObjectStoreConfig",
    "ObjectStoreHandle",
    "start_object_store",
    # build queue
    "BuildQueueServer",
    "BuildQueueClient",
    "QueueConfig",
    "QueueHandle",
    "WorkerFarm",
    "run_worker",
    "start_queue",
    "StoreWarmer",
    # server
    "PowerQueryServer",
    "ServerConfig",
    "ServerHandle",
    "start_in_thread",
    # client
    "PowerQueryClient",
    "RetryPolicy",
    "LoadReport",
    "generate_load",
    # cluster
    "Cluster",
    "ClusterConfig",
    "ClusterClient",
    "HashRing",
    "start_cluster",
    "generate_cluster_load",
    "placement_key",
    # durability & resilience
    "WriteAheadLog",
    "WalError",
    "Supervisor",
    "CircuitBreaker",
    "breaker_for",
    "breaker_states",
    "reset_breakers",
    # protocol
    "Deadline",
    "ProtocolError",
    "ResponseError",
    "ERROR_TYPES",
    "MAX_LINE_BYTES",
]
