"""Serving subsystem: model persistence and the power-query service.

Builds the bridge from "a model can be constructed" to "models are an
operational service":

- :mod:`repro.serve.store` — :class:`ModelStore`, a content-addressed
  on-disk + in-memory cache of serialised ADD power models keyed by
  ``sha256(canonical netlist, build config)``, with atomic writes, a
  rebuildable manifest, an LRU byte budget and a ``get_or_build`` path
  that fans misses out through
  :func:`~repro.models.addmodel.build_add_models_parallel`;
- :mod:`repro.serve.server` — :class:`PowerQueryServer`, an asyncio
  JSON-lines-over-TCP server that micro-batches concurrent ``evaluate``
  requests per model into single compiled-kernel calls;
- :mod:`repro.serve.client` — :class:`PowerQueryClient` (blocking) and
  :func:`generate_load` (concurrent load generator);
- :mod:`repro.serve.cluster` — the scale-out tier: :class:`Cluster`
  (consistent-hash :class:`HashRing` over forked shard worker
  processes, a control-plane router with liveness monitoring and
  cluster-wide metric aggregation) plus the shard-aware
  :class:`ClusterClient` / :func:`generate_cluster_load`;
- :mod:`repro.serve.protocol` — the wire format and its structured
  errors.

CLI entry points: ``repro serve`` (``--workers N`` for a cluster),
``repro query``, ``repro cluster-stats`` and ``repro store``; the
numbers live in ``benchmarks/bench_serving.py`` / DESIGN.md §10+§13.
"""

from repro.serve.client import (
    LoadReport,
    PowerQueryClient,
    RetryPolicy,
    generate_load,
)
from repro.serve.cluster import (
    Cluster,
    ClusterClient,
    ClusterConfig,
    HashRing,
    generate_cluster_load,
    placement_key,
    start_cluster,
)
from repro.serve.protocol import (
    ERROR_TYPES,
    MAX_LINE_BYTES,
    ProtocolError,
    ResponseError,
)
from repro.serve.server import (
    PowerQueryServer,
    ServerConfig,
    ServerHandle,
    start_in_thread,
)
from repro.serve.store import (
    DEFAULT_MEMORY_BUDGET_BYTES,
    ModelStore,
    StoreEntry,
    canonical_build_config,
    store_key,
)

__all__ = [
    # store
    "ModelStore",
    "StoreEntry",
    "store_key",
    "canonical_build_config",
    "DEFAULT_MEMORY_BUDGET_BYTES",
    # server
    "PowerQueryServer",
    "ServerConfig",
    "ServerHandle",
    "start_in_thread",
    # client
    "PowerQueryClient",
    "RetryPolicy",
    "LoadReport",
    "generate_load",
    # cluster
    "Cluster",
    "ClusterConfig",
    "ClusterClient",
    "HashRing",
    "start_cluster",
    "generate_cluster_load",
    "placement_key",
    # protocol
    "ProtocolError",
    "ResponseError",
    "ERROR_TYPES",
    "MAX_LINE_BYTES",
]
