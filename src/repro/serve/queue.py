"""Distributed build queue: misses become leased jobs for a worker farm.

:class:`~repro.serve.store.ModelStore.get_or_build_many` fans cache
misses into a *local* process pool; this module moves that fan-out off
the host.  A :class:`BuildQueueServer` holds ``(store_key, netlist,
config)`` jobs; a farm of worker processes (:func:`run_worker`) claims
them under **leases**, builds the ADD, publishes the model through a
shared :class:`~repro.serve.storage.StoreBackend`, and reports back.
Submitters long-poll completion and then read the published model out of
the same backend — the queue never carries model payloads, only job
state, so the wire stays light no matter how large the ADDs get.

The protocol (JSON lines, framing of :mod:`repro.serve.protocol`):

``queue.submit {netlist, config, force?}``
    Enqueue a job; the server derives the content key itself, so two
    submitters of the same circuit + config get **one** build (the
    second submit is deduplicated onto the in-flight job).  ``force``
    re-enqueues a completed job whose published artifact has vanished
    (the warmer's case).
``queue.claim {worker}``
    Hand the oldest pending job to a worker with a lease of
    ``lease_s`` seconds and an incremented attempt number; ``None``
    when the queue is idle.
``queue.heartbeat {key, worker}``
    Extend a held lease; answers ``not_found`` when the lease has been
    reassigned, telling a slow worker to abandon the job (and, crucially,
    *not* publish).
``queue.publish {key, worker}`` / ``queue.fail {key, worker, error}``
    Terminal reports.  Publishes are exactly-once per key: a late or
    duplicate publish is suppressed and counted, never double-applied.
``queue.wait {key, timeout_s}``
    Long-poll a job's terminal state.

Failure model: a worker that dies mid-build simply stops heartbeating;
the lease sweeper re-enqueues the job (``queue.leases.expired``) until
``max_attempts`` claims have been burned, after which the job fails with
the last known error.  A *zombie* worker that finishes after losing its
lease either notices at heartbeat time and abandons, or its late publish
is absorbed by the exactly-once rule — and since keys are
content-addressed, even the racing backend ``put`` it may have completed
wrote byte-identical data.  Chaos sites: ``queue.worker.crash``
(SIGKILL self mid-build, token = attempt), ``queue.lease.expire`` (force
expiry), ``queue.job.duplicate_claim`` (hand a running job to a second
claimer), ``queue.server.crash`` (SIGKILL the *server* after a journal
append or a replayed record, token = restart generation).

Durability: with ``QueueConfig.wal_dir`` set, every state transition
(submit, claim, publish, fail, expire — not heartbeats) is journaled to
a :class:`~repro.serve.wal.WriteAheadLog` **before** it mutates memory
or acks the client.  A SIGKILLed server replays snapshot + tail on
restart, re-enqueues in-flight leases as pending (leases do not survive
a restart; the attempt counter does), and keeps the exactly-once publish
rule across its own death: a ``done`` job stays done, so the retried or
straggling publish is absorbed exactly as in the live path.  Without
``wal_dir`` the queue is in-memory only, exactly the old behaviour.

A :class:`StoreWarmer` closes the loop with the store's access
telemetry: keys that stay hot (accessed recently and often) but are
missing from the backend — evicted by gc, or a fresh replica — are
re-submitted in the background before a client pays the miss.
"""

from __future__ import annotations

import asyncio
import logging
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ModelError, ServeConnectionError
from repro.netlist.netlist import Netlist, netlist_from_canonical_dict
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.serve import protocol
from repro.serve.breaker import CircuitBreaker, breaker_for
from repro.serve.client import PowerQueryClient, RetryPolicy
from repro.serve.protocol import Deadline, ProtocolError
from repro.serve.wal import WriteAheadLog
from repro.testing import faults

_LOG = logging.getLogger("repro.serve.queue")

_MET = get_metrics()
_REQUESTS = _MET.counter("queue.requests")
_SUBMITTED = _MET.counter("queue.jobs.submitted")
_DEDUPED = _MET.counter("queue.jobs.deduped")
_COMPLETED = _MET.counter("queue.jobs.completed")
_FAILED = _MET.counter("queue.jobs.failed")
_CLAIMS = _MET.counter("queue.claims")
_DUP_CLAIMS = _MET.counter("queue.claims.duplicate")
_HEARTBEATS = _MET.counter("queue.heartbeats")
_LEASES_EXPIRED = _MET.counter("queue.leases.expired")
_PUBLISHES = _MET.counter("queue.publishes")
_DUP_PUBLISHES = _MET.counter("queue.publishes.duplicate")
_WORKER_BUILDS = _MET.counter("queue.worker.builds")
_WORKER_ABANDONED = _MET.counter("queue.worker.abandoned")
_WORKER_RESPAWNS = _MET.counter("queue.worker.respawns")
_WARM_SUBMITTED = _MET.counter("queue.warm.submitted")
_RECOVERED_JOBS = _MET.counter("queue.recovery.jobs")
_RECOVERED_LEASES = _MET.counter("queue.recovery.requeued_leases")


@dataclass(frozen=True)
class QueueConfig:
    """Tunables of one :class:`BuildQueueServer`."""

    host: str = "127.0.0.1"
    #: 0 = pick an ephemeral port (read it back from ``server.port``).
    port: int = 0
    #: Seconds a claimed job stays assigned without a heartbeat.
    lease_s: float = 10.0
    #: How often the sweeper looks for expired leases.
    sweep_interval_s: float = 0.5
    #: Claims a job may burn (crashes, lease losses) before failing.
    max_attempts: int = 3
    #: Longest single ``queue.wait`` long-poll the server will hold.
    max_wait_s: float = 60.0
    #: Directory for the write-ahead log; None = in-memory only.
    wal_dir: Optional[str] = None
    #: fsync every journal append (durability vs. throughput).
    wal_fsync: bool = True
    #: Compact the journal into a snapshot every this-many records.
    wal_compact_every: int = 256


@dataclass
class _Job:
    """Server-side state of one build job."""

    key: str
    netlist: Dict
    config: Dict
    state: str = "pending"  # pending | running | done | failed
    attempts: int = 0
    worker: Optional[str] = None
    lease_expires_at: float = 0.0
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    waiters: List[asyncio.Future] = field(default_factory=list)

    def public(self) -> Dict:
        return {
            "key": self.key,
            "state": self.state,
            "attempts": self.attempts,
            "worker": self.worker,
            "error": self.error,
        }

    def snapshot(self) -> Dict:
        """Durable form of this job (no leases, no waiters — neither
        survives a restart)."""
        return {
            "key": self.key,
            "netlist": self.netlist,
            "config": self.config,
            "state": self.state,
            "attempts": self.attempts,
            "error": self.error,
        }

    @classmethod
    def from_snapshot(cls, data: Dict) -> "_Job":
        return cls(
            key=data["key"],
            netlist=data["netlist"],
            config=data["config"],
            state=data.get("state", "pending"),
            attempts=int(data.get("attempts", 0)),
            error=data.get("error"),
        )

    def settle(self) -> None:
        """Wake every long-poller; call when the job turns terminal."""
        for future in self.waiters:
            if not future.done():
                future.set_result(None)
        self.waiters.clear()


class BuildQueueServer:
    """Lease-based build-job broker over JSON lines.

    All job state lives on one asyncio loop (no locks); workers and
    submitters are plain socket clients.  The server never builds and
    never stores — it only arbitrates who builds what, which is why a
    tiny single-threaded broker keeps an arbitrarily large farm busy.
    """

    def __init__(self, config: QueueConfig = QueueConfig()):
        if config.lease_s <= 0 or config.max_attempts < 1:
            raise ModelError("queue needs lease_s > 0 and max_attempts >= 1")
        self.config = config
        self.port: Optional[int] = None
        self.started_at: Optional[float] = None
        #: Restart generation (set by the supervisor child entry); the
        #: token the ``queue.server.crash`` chaos site is consulted
        #: with, so a fault plan can kill generation 0 after K appends,
        #: kill generation 1 mid-replay, and let generation 2 live.
        self.crash_token = 0
        self._jobs: Dict[str, _Job] = {}
        self._pending: deque = deque()
        self._server: Optional[asyncio.base_events.Server] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._sweeper: Optional[asyncio.Task] = None
        self._stopping = False
        self._wal: Optional[WriteAheadLog] = None
        if config.wal_dir:
            self._wal = WriteAheadLog(
                config.wal_dir,
                name="queue",
                fsync=config.wal_fsync,
                compact_every=config.wal_compact_every,
            )

    # ------------------------------------------------------------------
    # Lifecycle (mirrors PowerQueryServer / ObjectStoreServer)
    # ------------------------------------------------------------------
    async def start(self) -> None:
        # Recover *before* binding: no request may observe pre-replay
        # state, and a crash during replay leaves the port closed so
        # clients keep getting clean connection refusals.
        self._recover()
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_LINE_BYTES,
            reuse_address=True,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.monotonic()
        self._sweeper = asyncio.create_task(self._sweep_leases())

    # ------------------------------------------------------------------
    # Durability: journal + recovery
    # ------------------------------------------------------------------
    def _journal(self, record: Dict) -> None:
        """Append one state transition to the WAL (before it is applied).

        The ``queue.server.crash`` site fires *after* the append and
        *before* the in-memory apply/ack — the worst-case window: the
        client sees its connection die without an answer, and recovery
        must replay the record so the retried request dedupes onto it.
        """
        if self._wal is None:
            return
        self._wal.append(record)
        if faults.fires("queue.server.crash", token=self.crash_token):
            os.kill(os.getpid(), signal.SIGKILL)

    def _commit(self, record: Dict) -> None:
        """Journal, apply, then (maybe) checkpoint — in that order.

        Compaction must run *after* the apply: the snapshot is stamped
        with the journal's LSN, so folding pre-apply state would
        checkpoint a world that is missing its own newest record.
        """
        self._journal(record)
        self._apply_record(record)
        if self._wal is not None:
            self._wal.maybe_compact(self._snapshot_state())

    def _snapshot_state(self) -> Dict:
        return {
            "jobs": [job.snapshot() for job in self._jobs.values()],
            "pending": list(self._pending),
        }

    def _load_snapshot(self, state: Dict) -> None:
        self._jobs = {}
        for data in state.get("jobs", []):
            job = _Job.from_snapshot(data)
            self._jobs[job.key] = job
        self._pending = deque(
            key for key in state.get("pending", []) if key in self._jobs
        )

    def _recover(self) -> None:
        """Rebuild job state from snapshot + journal tail.

        Invariants restored: every journaled-and-applied transition is
        visible; ``done`` stays done (exactly-once publish survives the
        server's death); running jobs lose their lease and return to
        pending with their attempt counter intact.
        """
        if self._wal is None:
            return
        state, tail = self._wal.recover()
        if state is not None:
            self._load_snapshot(state)
        for record in tail:
            if faults.fires("queue.server.crash", token=self.crash_token):
                # Chaos: die *during* replay — the next generation must
                # recover from the very same snapshot + tail.
                os.kill(os.getpid(), signal.SIGKILL)
            self._apply_record(record)
        recovered = len(self._jobs)
        if recovered:
            _RECOVERED_JOBS.inc(recovered)
        # Leases do not survive a restart: nobody heartbeats a dead
        # server, and the worker may itself be gone.  Re-enqueue running
        # jobs as pending (attempts intact, so crash loops still burn
        # toward max_attempts) and rebuild the pending deque in stable
        # order without duplicates.
        pending = [
            key
            for key in self._pending
            if key in self._jobs and self._jobs[key].state == "pending"
        ]
        seen = set(pending)
        for key, job in self._jobs.items():
            if job.state == "running":
                job.state = "pending"
                job.worker = None
                _RECOVERED_LEASES.inc()
            if job.state == "pending" and key not in seen:
                pending.append(key)
                seen.add(key)
        self._pending = deque(pending)
        if tail:
            # Fold the replayed tail into a fresh snapshot so the next
            # crash replays from here, not from the beginning.  Safe to
            # die anywhere inside: compaction is snapshot-then-truncate
            # and replay is idempotent.
            self._wal.compact(self._snapshot_state())

    def _apply_record(self, record: Dict) -> None:
        """Apply one journaled transition; idempotent and defensive.

        Shared by the live paths (journal → apply → ack) and replay, so
        what recovery rebuilds is *by construction* what the live server
        did.  Records that no longer make sense (job vanished from an
        older snapshot, publish on an already-done job) are no-ops —
        replaying a prefix twice must converge, not crash.
        """
        op = record.get("op")
        key = record.get("key")
        job = self._jobs.get(key) if key else None
        if op == "submit":
            if job is None:
                job = _Job(
                    key=key,
                    netlist=record["netlist"],
                    config=record.get("config") or {},
                )
                self._jobs[key] = job
                self._pending.append(key)
            return
        if job is None:
            return
        if op == "resubmit":
            job.state = "pending"
            job.attempts = 0
            job.worker = None
            job.error = None
            if key not in self._pending:
                self._pending.append(key)
            return
        if op == "claim":
            if job.state in ("done", "failed"):
                return
            job.state = "running"
            job.worker = record.get("worker")
            job.attempts += 1
            job.lease_expires_at = time.monotonic() + self.config.lease_s
            return
        if op == "publish":
            if job.state == "done":
                return
            job.state = "done"
            job.worker = record.get("worker")
            job.error = None
            job.settle()
            return
        if op == "fail":
            if job.state in ("done", "failed"):
                return
            job.error = str(record.get("error") or "build failed")
            if job.attempts >= self.config.max_attempts:
                job.state = "failed"
                job.worker = record.get("worker")
                job.settle()
            else:
                job.state = "pending"
                job.worker = None
                self._pending.append(key)
            return
        if op == "expire":
            if job.state != "running":
                return
            job.worker = None
            if job.attempts >= self.config.max_attempts:
                job.state = "failed"
                job.error = job.error or (
                    f"lease expired on every attempt "
                    f"({self.config.max_attempts}); worker(s) lost"
                )
                job.settle()
            else:
                job.state = "pending"
                self._pending.append(key)
            return
        # Unknown op: a newer server wrote it; ignore rather than die.

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._stop_event is not None
        await self._stop_event.wait()
        await self.stop()

    def request_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    async def stop(self) -> None:
        if self._stopping:
            return
        self._stopping = True
        if self._sweeper is not None:
            self._sweeper.cancel()
            try:
                await self._sweeper
            except asyncio.CancelledError:
                pass
        for job in self._jobs.values():
            job.settle()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._wal is not None:
            self._wal.close()

    # ------------------------------------------------------------------
    # Lease sweeper
    # ------------------------------------------------------------------
    async def _sweep_leases(self) -> None:
        while True:
            await asyncio.sleep(self.config.sweep_interval_s)
            now = time.monotonic()
            for job in list(self._jobs.values()):
                if job.state != "running":
                    continue
                expired = now > job.lease_expires_at
                if not expired and faults.fires("queue.lease.expire"):
                    # Chaos hook: the lease is treated as already gone,
                    # exactly as if the worker had stalled past it.
                    expired = True
                if expired:
                    self._expire(job)
            self._update_gauges()

    def _expire(self, job: _Job) -> None:
        _LEASES_EXPIRED.inc()
        if job.attempts >= self.config.max_attempts:
            _FAILED.inc()
        self._commit({"op": "expire", "key": job.key})

    def _update_gauges(self) -> None:
        """Export queue depth and active leases for scrapes and ``top``."""
        _MET.gauge("queue.depth", kind="last").set(len(self._pending))
        _MET.gauge("queue.leases.active", kind="last").set(
            sum(1 for job in self._jobs.values() if job.state == "running")
        )

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._stopping:
                try:
                    line = await reader.readline()
                except asyncio.CancelledError:
                    break
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        protocol.encode(
                            protocol.error_response(
                                None, "protocol", "request line too long"
                            )
                        )
                    )
                    break
                except ConnectionError:
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                response = await self._handle(line)
                try:
                    writer.write(protocol.encode(response))
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover - broken transport
                pass

    async def _handle(self, line: bytes) -> Dict:
        request_id = None
        try:
            request = protocol.decode_request(line)
            request_id = request.get("id")
            _REQUESTS.inc()
            return protocol.ok_response(
                request_id, await self._dispatch(request["op"], request)
            )
        except ProtocolError as exc:
            return protocol.error_response(request_id, exc.error_type, str(exc))
        except Exception as exc:  # noqa: BLE001 - answer, don't crash
            return protocol.error_response(
                request_id, "internal", f"{type(exc).__name__}: {exc}"
            )

    def _require_job(self, request: Dict) -> _Job:
        key = protocol.require_field(request, "key")
        job = self._jobs.get(key)
        if job is None:
            raise ProtocolError("not_found", f"no job {key[:12]}…")
        return job

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    async def _dispatch(self, op: str, request: Dict):
        tracer = get_tracer()
        if op == "queue.submit":
            netlist = protocol.require_field(request, "netlist", dict)
            config = request.get("config") or {}
            if not isinstance(config, dict):
                raise ProtocolError("bad_request", "'config' must be an object")
            # Key derivation is the server's job so every submitter of
            # one circuit + config agrees without trusting each other.
            from repro.serve.store import store_key_from_canonical

            try:
                key = store_key_from_canonical(netlist, config)
            except (ModelError, TypeError, ValueError) as exc:
                raise ProtocolError(
                    "bad_request", f"unkeyable job: {exc}"
                ) from None
            with tracer.span("queue.submit", key=key[:12]):
                job = self._jobs.get(key)
                if job is not None:
                    resurrect = bool(request.get("force")) and job.state in (
                        "done",
                        "failed",
                    )
                    if not resurrect:
                        _DEDUPED.inc()
                        return dict(job.public(), deduped=True)
                    # Re-enqueue a terminal job (artifact vanished, or a
                    # caller retrying a failed build) from a clean slate.
                    self._commit({"op": "resubmit", "key": key})
                    _SUBMITTED.inc()
                    self._update_gauges()
                    return dict(job.public(), deduped=False)
                record = {
                    "op": "submit",
                    "key": key,
                    "netlist": netlist,
                    "config": config,
                }
                self._commit(record)
                _SUBMITTED.inc()
                self._update_gauges()
                return dict(self._jobs[key].public(), deduped=False)
        if op == "queue.claim":
            worker = protocol.require_field(request, "worker")
            job = None
            while self._pending:
                candidate = self._jobs.get(self._pending.popleft())
                if candidate is not None and candidate.state == "pending":
                    job = candidate
                    break
            if job is None and faults.fires("queue.job.duplicate_claim"):
                # Chaos hook: hand a *running* job to this claimer too,
                # manufacturing the two-workers-one-job race that the
                # exactly-once publish rule must absorb.
                job = next(
                    (
                        j
                        for j in self._jobs.values()
                        if j.state == "running" and j.worker != worker
                    ),
                    None,
                )
                if job is not None:
                    _DUP_CLAIMS.inc()
            if job is None:
                return {"job": None}
            self._commit({"op": "claim", "key": job.key, "worker": worker})
            _CLAIMS.inc()
            self._update_gauges()
            return {
                "job": {
                    "key": job.key,
                    "netlist": job.netlist,
                    "config": job.config,
                    "lease_s": self.config.lease_s,
                    "attempt": job.attempts,
                }
            }
        if op == "queue.heartbeat":
            job = self._require_job(request)
            worker = protocol.require_field(request, "worker")
            if job.state != "running" or job.worker != worker:
                raise ProtocolError(
                    "not_found",
                    f"lease on {job.key[:12]}… is no longer held by "
                    f"{worker!r}",
                )
            # Not journaled: a lease is a promise of *this* incarnation
            # only; recovery re-enqueues running jobs regardless.
            job.lease_expires_at = time.monotonic() + self.config.lease_s
            _HEARTBEATS.inc()
            return {"lease_s": self.config.lease_s}
        if op == "queue.publish":
            job = self._require_job(request)
            worker = protocol.require_field(request, "worker")
            if job.state in ("done", "failed"):
                # Exactly-once: a zombie or duplicate-claimed worker's
                # late publish is absorbed, never double-applied; and a
                # terminally-failed job is not resurrected for waiters
                # who were already answered.
                _DUP_PUBLISHES.inc()
                return {"accepted": False, "duplicate": True}
            # Journal *before* acking: if we die here, replay marks the
            # job done, and the worker's retried publish is absorbed by
            # the duplicate rule above — exactly-once across the
            # server's own death.
            self._commit(
                {"op": "publish", "key": job.key, "worker": worker}
            )
            _PUBLISHES.inc()
            _COMPLETED.inc()
            self._update_gauges()
            return {"accepted": True, "duplicate": False}
        if op == "queue.fail":
            job = self._require_job(request)
            worker = protocol.require_field(request, "worker")
            error = str(request.get("error") or "build failed")
            if job.state in ("done", "failed"):
                return job.public()
            record = {
                "op": "fail",
                "key": job.key,
                "worker": worker,
                "error": error,
            }
            if job.attempts >= self.config.max_attempts:
                _FAILED.inc()
            self._commit(record)
            self._update_gauges()
            return job.public()
        if op == "queue.wait":
            job = self._require_job(request)
            timeout = min(
                float(request.get("timeout_s") or self.config.max_wait_s),
                self.config.max_wait_s,
            )
            deadline = Deadline.from_request(request)
            if deadline is not None:
                # Never park a poller past its end-to-end budget; an
                # already-expired request gets the state snapshot back
                # immediately (cheap, and the caller decides).  Stop 50ms
                # short so the answer beats the client's socket timeout —
                # a reply sent exactly at expiry loses that race.
                timeout = min(timeout, max(0.0, deadline.remaining_s() - 0.05))
            if job.state not in ("done", "failed") and timeout > 0:
                future: asyncio.Future = asyncio.get_running_loop().create_future()
                job.waiters.append(future)
                try:
                    await asyncio.wait_for(future, timeout)
                except asyncio.TimeoutError:
                    if future in job.waiters:
                        job.waiters.remove(future)
            return job.public()
        if op == "stats":
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            active = sum(
                1 for job in self._jobs.values() if job.state == "running"
            )
            result = {
                "jobs": states,
                "pending_depth": len(self._pending),
                "active_leases": active,
                "lease_s": self.config.lease_s,
                "publishes": _PUBLISHES.value,
                "duplicate_publishes": _DUP_PUBLISHES.value,
                "uptime_seconds": (
                    time.monotonic() - self.started_at
                    if self.started_at
                    else 0.0
                ),
            }
            if self._wal is not None:
                result["wal"] = self._wal.stats()
            return result
        if op == "ping":
            return "pong"
        if op == "shutdown":
            self.request_stop()
            return "stopping"
        raise ProtocolError("bad_request", f"unknown op {op!r}")


# ---------------------------------------------------------------------------
# Client
# ---------------------------------------------------------------------------
QueueSpec = Union["BuildQueueClient", str, Tuple[str, int]]


class BuildQueueClient(PowerQueryClient):
    """Blocking client for the build queue (submitters *and* workers).

    Inherits the JSON-lines transport, retry policy and typed connection
    errors of :class:`~repro.serve.client.PowerQueryClient`; adds the
    queue operations.  By default every instance shares the process-wide
    per-endpoint circuit breaker (:func:`~repro.serve.breaker.breaker_for`),
    so once the queue is known dead, submitters degrade to local builds
    without each paying a connect timeout; pass ``breaker=False`` to opt
    out, or a :class:`~repro.serve.breaker.CircuitBreaker` to share an
    explicit one.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        rng_seed: Optional[int] = None,
        breaker: Union[CircuitBreaker, None, bool] = True,
    ):
        if breaker is True:
            breaker = breaker_for(host, port)
        elif breaker is False:
            breaker = None
        super().__init__(
            host,
            port,
            timeout=timeout,
            retry=retry,
            rng_seed=rng_seed,
            breaker=breaker,
        )

    @classmethod
    def resolve(cls, spec: QueueSpec) -> "BuildQueueClient":
        """Turn a queue spec into a client.

        Accepts an existing client (returned as-is; caller keeps
        ownership), a ``"host:port"`` string, or a ``(host, port)`` pair.
        """
        if isinstance(spec, BuildQueueClient):
            return spec
        if isinstance(spec, str):
            host, _, port = spec.rpartition(":")
            if not host or not port.isdigit():
                raise ModelError(
                    f"malformed queue spec {spec!r} (want host:port)"
                )
            return cls(host, int(port))
        host, port = spec
        return cls(host, int(port))

    def submit(self, netlist: Union[Netlist, Dict], config: Optional[Dict] = None,
               force: bool = False, deadline: Optional[Deadline] = None) -> Dict:
        """Enqueue one build job; returns the job's public state."""
        wire = (
            netlist.canonical_dict()
            if isinstance(netlist, Netlist)
            else netlist
        )
        payload = {
            "op": "queue.submit",
            "netlist": wire,
            "config": config or {},
        }
        if force:
            payload["force"] = True
        return self.call(payload, deadline=deadline)

    def wait(self, key: str, timeout_s: Optional[float] = None,
             poll_s: float = 15.0,
             deadline: Optional[Deadline] = None) -> Dict:
        """Block until a job is terminal (or ``timeout_s`` elapses).

        Long-polls the server in ``poll_s`` slices so a stuck job never
        wedges the connection past the server's per-request cap.  An
        end-to-end ``deadline`` caps the whole wait (and rides the wire,
        so the server never parks this poller past the budget either).
        """
        expires = None if timeout_s is None else time.monotonic() + timeout_s
        if deadline is not None:
            expires = (
                deadline.expires_at
                if expires is None
                else min(expires, deadline.expires_at)
            )
        while True:
            slice_s = poll_s
            if expires is not None:
                slice_s = min(slice_s, max(0.0, expires - time.monotonic()))
            state = self.call(
                {"op": "queue.wait", "key": key, "timeout_s": slice_s},
                deadline=deadline,
            )
            if state["state"] in ("done", "failed"):
                return state
            if expires is not None and time.monotonic() >= expires:
                return state

    def claim(self, worker: str) -> Optional[Dict]:
        """One pending job (with lease) or None when the queue is idle.

        Never retried by policy: a claim whose *response* is lost has
        still leased the job server-side, and blind retries would burn
        attempts.  Callers (the worker loop) own reconnect pacing.
        """
        return self.call(
            {"op": "queue.claim", "worker": worker}, idempotent=False
        )["job"]

    def heartbeat(self, key: str, worker: str) -> bool:
        """Extend a held lease; False when the lease has been lost.

        Safe to retry (extending twice is harmless), so a retry policy
        lets the beat ride out a supervised server restart.
        """
        try:
            self.call({"op": "queue.heartbeat", "key": key, "worker": worker})
            return True
        except protocol.ResponseError as exc:
            if exc.error_type == "not_found":
                return False
            raise

    def publish(self, key: str, worker: str) -> Dict:
        """Report a built-and-stored job; idempotent per key."""
        return self.call({"op": "queue.publish", "key": key, "worker": worker})

    def fail(self, key: str, worker: str, error: str) -> Dict:
        """Report a failed build; the server may re-enqueue."""
        return self.call(
            {"op": "queue.fail", "key": key, "worker": worker, "error": error}
        )


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------
def run_worker(
    host: str,
    port: int,
    store_spec: str,
    worker_id: str,
    poll_interval_s: float = 0.05,
    build_delay_s: float = 0.0,
    max_idle_s: Optional[float] = None,
    reconnect_grace_s: float = 10.0,
) -> None:
    """Claim-build-publish loop of one farm worker (a process entry point).

    Claims jobs from the queue at ``host:port``, rebuilds the netlist
    from its wire form, builds the ADD, publishes the model into the
    store backend at ``store_spec``, and reports back — heartbeating on a
    *second* connection the whole time so a long build never loses its
    lease.  ``build_delay_s`` artificially stretches each build (chaos
    tests use it to guarantee a kill lands mid-build).  With
    ``max_idle_s`` the worker exits after the queue stays empty that
    long; otherwise it runs until killed or the queue goes away.

    A queue that stops answering is given ``reconnect_grace_s`` to come
    back (a supervised restart takes well under a second) before the
    worker gives up and exits — so one SIGKILL of the broker does not
    also dissolve the whole farm.

    Fault plans arm through ``REPRO_FAULTS`` as usual; the
    ``queue.worker.crash`` site (token = attempt number) SIGKILLs this
    process mid-build — after the claim, before the publish — which is
    exactly the window lease reassignment must cover.
    """
    from repro.models.addmodel import build_add_model
    from repro.serve.store import ModelStore
    from repro.serve.storage import open_backend

    store = ModelStore(open_backend(store_spec))
    retry = RetryPolicy(max_attempts=5, base_delay_s=0.05, max_delay_s=0.5)
    try:
        client = BuildQueueClient(host, port, retry=retry)
    except ServeConnectionError:
        return  # queue never answered at all; nothing to do
    idle_since: Optional[float] = None
    down_since: Optional[float] = None
    try:
        while True:
            try:
                job = client.claim(worker_id)
            except ServeConnectionError:
                now = time.monotonic()
                down_since = down_since or now
                if now - down_since > reconnect_grace_s:
                    return  # the queue is really gone, not restarting
                time.sleep(max(poll_interval_s, 0.05))
                continue
            down_since = None
            if job is None:
                now = time.monotonic()
                idle_since = idle_since or now
                if max_idle_s is not None and now - idle_since > max_idle_s:
                    return
                time.sleep(poll_interval_s)
                continue
            idle_since = None
            key = job["key"]
            attempt = int(job.get("attempt", 1))
            lease_s = float(job.get("lease_s", 10.0))
            lease_lost = threading.Event()
            stop_beat = threading.Event()
            beat = threading.Thread(
                target=_heartbeat_loop,
                args=(host, port, key, worker_id, lease_s, stop_beat, lease_lost),
                daemon=True,
            )
            beat.start()
            try:
                netlist = netlist_from_canonical_dict(
                    job["netlist"], name=f"queued-{key[:12]}"
                )
                if build_delay_s > 0:
                    time.sleep(build_delay_s)
                if faults.fires("queue.worker.crash", token=attempt):
                    # Chaos: die the hard way, exactly mid-build — no
                    # cleanup, no fail report, just a vanished lease.
                    os.kill(os.getpid(), signal.SIGKILL)
                model = build_add_model(netlist, **job["config"])
                _WORKER_BUILDS.inc()
                if lease_lost.is_set():
                    # The queue reassigned this job while we built; the
                    # new assignee owns publishing.  (Even a racing
                    # backend put would have written identical bytes —
                    # keys are content-addressed.)
                    _WORKER_ABANDONED.inc()
                    continue
                store.put(netlist, model, **job["config"])
                client.publish(key, worker_id)
            except ServeConnectionError:
                return
            except Exception as exc:  # noqa: BLE001 - report, keep serving
                try:
                    client.fail(key, worker_id, f"{type(exc).__name__}: {exc}")
                except ServeConnectionError:
                    return
            finally:
                stop_beat.set()
                beat.join(timeout=1.0)
    finally:
        client.close()


def _heartbeat_loop(
    host: str,
    port: int,
    key: str,
    worker_id: str,
    lease_s: float,
    stop: threading.Event,
    lease_lost: threading.Event,
) -> None:
    """Extend one job's lease until told to stop (worker side-thread)."""
    interval = max(0.05, lease_s / 3.0)
    try:
        client = BuildQueueClient(
            host,
            port,
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.05,
                              max_delay_s=0.25),
        )
    except ServeConnectionError:
        return
    try:
        while not stop.wait(interval):
            try:
                if not client.heartbeat(key, worker_id):
                    lease_lost.set()
                    return
            except ServeConnectionError:
                return
    finally:
        client.close()


# ---------------------------------------------------------------------------
# Thread-hosted server + process farm (tests, CLI, smokes)
# ---------------------------------------------------------------------------
@dataclass
class QueueHandle:
    """A build-queue server running on a private loop in a daemon thread."""

    server: BuildQueueServer
    thread: threading.Thread
    loop: asyncio.AbstractEventLoop

    @property
    def host(self) -> str:
        return self.server.config.host

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    @property
    def spec(self) -> str:
        """The ``host:port`` spec clients dial."""
        return f"{self.host}:{self.port}"

    def stop(self, timeout: float = 10.0) -> None:
        try:
            self.loop.call_soon_threadsafe(self.server.request_stop)
        except RuntimeError:  # loop already closed
            pass
        self.thread.join(timeout)

    def __enter__(self) -> "QueueHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_queue(
    config: QueueConfig = QueueConfig(), ready_timeout: float = 30.0
) -> QueueHandle:
    """Run a :class:`BuildQueueServer` in a daemon thread."""
    server = BuildQueueServer(config)
    ready = threading.Event()
    box: Dict[str, object] = {}

    async def _main() -> None:
        try:
            await server.start()
        except Exception as exc:  # noqa: BLE001 - surface to caller
            box["error"] = exc
            ready.set()
            return
        box["loop"] = asyncio.get_running_loop()
        ready.set()
        await server.serve_forever()

    thread = threading.Thread(
        target=lambda: asyncio.run(_main()), name="build-queue", daemon=True
    )
    thread.start()
    if not ready.wait(ready_timeout):
        raise TimeoutError("build queue did not start in time")
    if "error" in box:
        thread.join(1.0)
        raise box["error"]  # type: ignore[misc]
    return QueueHandle(server=server, thread=thread, loop=box["loop"])  # type: ignore[arg-type]


class WorkerFarm:
    """A set of :func:`run_worker` processes sharing one queue + backend.

    Forked where the platform allows (inheriting the parent's modules
    and fault environment), spawned otherwise — the same policy as the
    build pool and the serving cluster.
    """

    def __init__(
        self,
        host: str,
        port: int,
        store_spec: str,
        count: int = 4,
        poll_interval_s: float = 0.05,
        build_delay_s: float = 0.0,
    ):
        import multiprocessing

        if count < 1:
            raise ModelError("a worker farm needs at least one worker")
        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        self._ctx = multiprocessing.get_context(method)
        self.host = host
        self.port = port
        self.store_spec = store_spec
        self.poll_interval_s = poll_interval_s
        self.build_delay_s = build_delay_s
        self.processes: List = []
        self.respawns = 0
        self._logged_slots: set = set()
        for index in range(count):
            self._spawn(index)

    def _spawn(self, index: int) -> None:
        process = self._ctx.Process(
            target=run_worker,
            args=(
                self.host,
                self.port,
                self.store_spec,
                f"worker-{index}-{os.getpid()}",
            ),
            kwargs={
                "poll_interval_s": self.poll_interval_s,
                "build_delay_s": self.build_delay_s,
            },
            daemon=True,
        )
        process.start()
        self.processes.append(process)

    def alive(self) -> int:
        """How many workers are currently running."""
        return sum(1 for p in self.processes if p.is_alive())

    def respawn_dead(self) -> int:
        """Replace dead workers (chaos recovery); returns how many.

        Each respawn is counted (``queue.worker.respawns``); the log
        line is emitted once per worker *slot*, not once per poll — a
        crash-looping slot under a tight respawn poll would otherwise
        flood the log with the same fact.
        """
        replaced = 0
        for index, process in enumerate(list(self.processes)):
            if not process.is_alive():
                self.processes.remove(process)
                self._spawn(index)
                replaced += 1
                self.respawns += 1
                _WORKER_RESPAWNS.inc()
                if index not in self._logged_slots:
                    self._logged_slots.add(index)
                    _LOG.warning(
                        "worker slot %d died (exitcode=%s); respawned",
                        index,
                        process.exitcode,
                    )
        return replaced

    def stop(self, timeout: float = 5.0) -> None:
        for process in self.processes:
            if process.is_alive():
                process.terminate()
        for process in self.processes:
            process.join(timeout)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.kill()
                process.join(timeout)

    def __enter__(self) -> "WorkerFarm":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# Telemetry-driven warming
# ---------------------------------------------------------------------------
class StoreWarmer:
    """Background thread that pre-builds predicted-hot keys.

    Policy: a key is *hot* when the store's access profile shows at least
    ``min_accesses`` resolutions with the latest inside ``hot_window_s``.
    Every ``interval_s`` the warmer scans the profile and, for each hot
    key **missing from the backend** (evicted by gc, or a replica still
    catching up), force-submits its build to the queue — so the next
    client resolves a hit instead of paying the build.  Submission is
    deduplicated by the queue itself; the warmer never waits on results.
    """

    def __init__(
        self,
        store,
        queue: QueueSpec,
        interval_s: float = 5.0,
        min_accesses: int = 2,
        hot_window_s: float = 300.0,
    ):
        self.store = store
        self.queue = queue
        self.interval_s = interval_s
        self.min_accesses = min_accesses
        self.hot_window_s = hot_window_s
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.submitted = 0

    def warm_once(self) -> int:
        """One scan-and-submit pass; returns how many keys were submitted."""
        hot = [
            record
            for record in self.store.access_profile()
            if record.accesses >= self.min_accesses
            and time.time() - record.last_access_at <= self.hot_window_s
        ]
        count = 0
        client = None
        try:
            for record in hot:
                if self.store.contains(record.key):
                    continue
                if client is None:
                    client = BuildQueueClient.resolve(self.queue)
                client.submit(
                    record.netlist.canonical_dict(),
                    record.config,
                    force=True,
                )
                _WARM_SUBMITTED.inc()
                count += 1
        except (ServeConnectionError, OSError):
            pass  # warming is advisory; never let it fail anything
        finally:
            if client is not None and client is not self.queue:
                client.close()
        self.submitted += count
        return count

    def start(self) -> "StoreWarmer":
        self._thread = threading.Thread(
            target=self._loop, name="store-warmer", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.warm_once()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "StoreWarmer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
