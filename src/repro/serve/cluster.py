"""Sharded, replicated serving tier on top of :class:`PowerQueryServer`.

One asyncio server process tops out on one core; millions of users need
horizontal scale.  This module turns N :class:`PowerQueryServer`\\ s into
one logical service:

- :class:`HashRing` — a consistent-hash ring (virtual nodes, SHA-256
  point placement, so lookups are deterministic across processes and
  interpreter hash seeds).  Models are placed on shards by hashing their
  ModelStore content key; adding or removing a shard moves only the keys
  that land on the new/old shard (~K/N of them), everything else stays
  put.
- **Shard workers** — forked worker processes, each running a full
  :class:`PowerQueryServer` (micro-batching, admission control, fused
  kernels — the whole single-shard feature set) on its own ephemeral
  port.  Workers reset their inherited metrics registry at startup so
  every ``serve.*`` counter they report is genuinely theirs, and obey a
  control pipe for zero-downtime model reload and graceful drain.
- :class:`ShardRouter` *control plane* — the cluster's public endpoint.
  It does **not** proxy the data path (a single proxy loop would cap the
  very throughput sharding buys); instead it serves the *ring*: a
  versioned snapshot of shard endpoints plus the model → replica-set
  placement map.  Shard-aware clients fetch the ring once, talk straight
  to shards, and re-fetch only when a shard stops answering.  The router
  also monitors worker liveness (a dead worker is removed from the ring
  and the version bumped — the failover signal), optionally respawns
  replacements, and aggregates every shard's ``serve.*`` metrics into a
  cluster-wide report from the snapshots workers continuously *push*
  over their control pipes, folded together with
  :func:`repro.obs.metrics.merge_snapshots` and optionally re-exported
  live in Prometheus text format (``prometheus_port``).
- :class:`ClusterClient` / :func:`generate_cluster_load` — shard-aware
  clients.  Requests for a model spray round-robin across its replica
  set; a transport failure marks the endpoint dead, re-fetches the ring
  and retries on the next replica (falling back to *any* ring member, so
  even a stale ring — see the ``serve.router.stale_ring`` fault site —
  cannot strand a request while one shard survives).

Observability: each shard worker pushes a full metrics snapshot through
its control pipe every ``metrics_push_interval_s`` seconds (and on
demand), so ``cluster_stats``, the Prometheus endpoint and ``repro top``
read recent data without a TCP fan-out to busy data ports — and a dead
shard's last snapshot outlives it.  When ``server.trace_dir`` is set,
every process (router included) writes its Chrome-trace export there at
shutdown, and requests carry W3C-style ``traceparent`` hops end to end,
so ``repro trace-merge`` reassembles one cross-process timeline per
``trace_id``.

Replication model: every worker holds every model in memory ("replicate
everywhere"); the placement map restricts *routing*, not residency, to
``replication`` shards per model.  That makes failover a pure routing
update — no model movement, no warm-up cliff — at the cost of per-shard
memory proportional to the full model set, the right trade for the
store's budget-sized models.  The chaos sites ``serve.shard.down``
(hard-kill a worker mid-request) and ``serve.router.stale_ring`` make
the failover path testable on demand; ``tests/test_cluster.py`` and
``scripts/cluster_smoke.py`` exercise it end to end.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    DeadlineExceededError,
    ReproError,
    ServeConnectionError,
)
from repro.models.addmodel import AddPowerModel
from repro.models.serialize import model_from_dict, model_to_dict
from repro.obs.metrics import get_metrics, merge_snapshots
from repro.obs.promexport import MetricsExporter, render_metrics
from repro.obs.trace import (
    TraceContext,
    enable_tracing,
    get_tracer,
    use_trace_context,
)
from repro.serve import protocol
from repro.serve.client import (
    LoadReport,
    PowerQueryClient,
    RetryPolicy,
    _bits,
    _percentile,
    _trace_root,
)
from repro.serve.protocol import ProtocolError
from repro.serve.server import PowerQueryServer, ServerConfig
from repro.testing import faults

_MET = get_metrics()
_SHARD_DEATHS = _MET.counter("serve.cluster.shard_deaths")
_FAILOVERS = _MET.counter("serve.cluster.failovers")
_RESTARTS = _MET.counter("serve.cluster.restarts")
_DRAINS = _MET.counter("serve.cluster.drains")
_RELOADS = _MET.counter("serve.cluster.reloads")
_STALE_RINGS = _MET.counter("serve.cluster.stale_rings_served")
_RING_VERSION = _MET.gauge("serve.cluster.ring_version", kind="last")
_SHARDS_GAUGE = _MET.gauge("serve.cluster.shards", kind="last")
_CLIENT_FAILOVERS = _MET.counter("serve.client.failovers")
_CLIENT_RING_REFRESHES = _MET.counter("serve.client.ring_refreshes")


# ---------------------------------------------------------------------------
# Consistent-hash ring
# ---------------------------------------------------------------------------
def _ring_hash(value: str) -> int:
    """Position of ``value`` on the ring: first 8 bytes of SHA-256.

    hashlib, not ``hash()`` — placement must agree across processes and
    interpreter invocations regardless of ``PYTHONHASHSEED``.
    """
    return int.from_bytes(
        hashlib.sha256(value.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent hashing of string keys onto named shards.

    Each shard contributes ``vnodes`` points at
    ``sha256(f"{shard}#{k}")``; a key is owned by the first shard point
    clockwise from ``sha256(key)``, and its replica set is the first
    ``count`` *distinct* shards on that walk.  The classic guarantees
    follow: placement is independent of insertion order, adding a shard
    only steals keys onto itself (expected K/N of them), and removing a
    shard only reassigns the keys it owned.
    """

    def __init__(self, shards: Sequence[str] = (), vnodes: int = 64):
        if vnodes < 1:
            raise ReproError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._points: List[Tuple[int, str]] = []
        self._shards: set = set()
        for shard in shards:
            self.add(shard)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards

    @property
    def shards(self) -> List[str]:
        """Sorted shard names currently on the ring."""
        return sorted(self._shards)

    def add(self, shard: str) -> None:
        """Place one shard's virtual nodes on the ring."""
        if shard in self._shards:
            raise ReproError(f"shard {shard!r} is already on the ring")
        self._shards.add(shard)
        for k in range(self.vnodes):
            bisect.insort(self._points, (_ring_hash(f"{shard}#{k}"), shard))

    def remove(self, shard: str) -> None:
        """Take one shard's virtual nodes off the ring."""
        if shard not in self._shards:
            raise ReproError(f"shard {shard!r} is not on the ring")
        self._shards.discard(shard)
        self._points = [p for p in self._points if p[1] != shard]

    def lookup(self, key: str, count: int = 1) -> List[str]:
        """The first ``count`` distinct shards clockwise from ``key``.

        Returns fewer than ``count`` names when the ring holds fewer
        shards; an empty list on an empty ring.
        """
        if not self._points:
            return []
        want = min(count, len(self._shards))
        start = bisect.bisect(self._points, (_ring_hash(key), ""))
        owners: List[str] = []
        for step in range(len(self._points)):
            shard = self._points[(start + step) % len(self._points)][1]
            if shard not in owners:
                owners.append(shard)
                if len(owners) == want:
                    break
        return owners


def placement_key(name: str, model: AddPowerModel) -> str:
    """The string a model is hashed onto the ring by.

    The ModelStore content key is derived from the source netlist hash;
    models loaded through the store carry it as ``source_hash``, making
    placement stable across renames.  Models built directly fall back to
    their serving name.
    """
    return model.source_hash or name


# ---------------------------------------------------------------------------
# Cluster configuration
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterConfig:
    """Tunables of one :class:`Cluster`."""

    host: str = "127.0.0.1"
    #: Router (control-plane) port; 0 picks an ephemeral one.
    router_port: int = 0
    #: Number of shard worker processes.
    workers: int = 2
    #: Distinct shards each model is routed across (capped at workers).
    replication: int = 2
    #: Virtual nodes per shard on the consistent-hash ring.
    vnodes: int = 64
    #: How often the router checks worker liveness.
    monitor_interval_s: float = 0.05
    #: Respawn a replacement worker when one dies.
    restart_failed: bool = False
    #: How long to wait for a worker to report its port at spawn.
    worker_ready_timeout_s: float = 60.0
    #: Seconds between unsolicited metrics pushes from each worker over
    #: its control pipe; 0 disables periodic pushes (``cluster_stats``
    #: still works — it requests a push on demand).
    metrics_push_interval_s: float = 1.0
    #: Serve a Prometheus text-format ``/metrics`` endpoint on this
    #: port (0 picks an ephemeral one; None disables the exporter).
    prometheus_port: Optional[int] = None
    #: ``host:port`` of a build queue whose depth / active leases the
    #: router exports as gauges on its stats and Prometheus endpoints
    #: (None: no queue polling).
    queue_spec: Optional[str] = None
    #: Per-shard server template; ``host``/``port`` and the shard fault
    #: token are overridden per worker.
    server: ServerConfig = field(default_factory=ServerConfig)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.replication < 1:
            raise ValueError(
                f"replication must be >= 1, got {self.replication}"
            )
        if self.vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {self.vnodes}")
        if self.monitor_interval_s <= 0:
            raise ValueError(
                f"monitor_interval_s must be > 0, "
                f"got {self.monitor_interval_s}"
            )
        if self.metrics_push_interval_s < 0:
            raise ValueError(
                f"metrics_push_interval_s must be >= 0, "
                f"got {self.metrics_push_interval_s}"
            )
        if self.prometheus_port is not None and not (
            0 <= self.prometheus_port <= 65535
        ):
            raise ValueError(
                f"prometheus_port must be a port number or None, "
                f"got {self.prometheus_port}"
            )


# ---------------------------------------------------------------------------
# Shard worker process
# ---------------------------------------------------------------------------
def _shard_worker_main(
    shard_id: str,
    index: int,
    blobs: Dict[str, dict],
    server_config: ServerConfig,
    conn,
    push_interval_s: float = 1.0,
) -> None:
    """Entry point of one shard worker process.

    Deserialises its model set, runs a :class:`PowerQueryServer` on an
    ephemeral port, reports the port back through the control pipe, and
    then obeys pipe commands (``stop``, ``reload``, ``ping``, ``push``)
    from a listener thread until told to exit, while a pusher thread
    ships a metrics snapshot up the same pipe every ``push_interval_s``
    seconds.  Top-level (not a closure) so the function pickles under
    any multiprocessing start method.
    """
    # The fork start method clones the parent's registry mid-flight;
    # reset so every counter this shard reports is genuinely its own
    # (cluster aggregation sums per-shard snapshots).
    get_metrics().reset()
    if server_config.trace_dir:
        # The deployment wants trace export: collect spans here too, so
        # this worker writes trace-<pid>-<port>.json at graceful stop.
        enable_tracing()
    models = {name: model_from_dict(blob) for name, blob in blobs.items()}
    server = PowerQueryServer(models, server_config)
    # The pusher thread and the control listener both write to the pipe;
    # pickled messages must not interleave.
    send_lock = threading.Lock()

    def _send(message: Dict) -> bool:
        try:
            with send_lock:
                conn.send(message)
            return True
        except (OSError, BrokenPipeError):
            return False

    def _push(requested: bool = False) -> bool:
        message = {
            "op": "metrics",
            "shard": shard_id,
            "ts": time.time(),
            "stats": server._stats(),
        }
        if requested:
            # Marks the reply to an explicit "push" command so the
            # parent can skip stale periodic pushes queued ahead of it.
            message["requested"] = True
        return _send(message)

    async def _main() -> None:
        try:
            await server.start()
        except Exception as exc:  # noqa: BLE001 - surface to the parent
            conn.send({"op": "error", "message": f"{type(exc).__name__}: {exc}"})
            return
        conn.send({"op": "ready", "port": server.port, "shard": shard_id})
        loop = asyncio.get_running_loop()

        def _metrics_pusher() -> None:
            while True:
                time.sleep(push_interval_s)
                if not _push():
                    return

        def _control_listener() -> None:
            while True:
                try:
                    command = conn.recv()
                except (EOFError, OSError):
                    # Parent gone: drain and exit rather than linger.
                    loop.call_soon_threadsafe(server.request_stop)
                    return
                op = command.get("op")
                if op == "stop":
                    loop.call_soon_threadsafe(server.request_stop)
                    return
                if op == "reload":
                    new = {
                        name: model_from_dict(blob)
                        for name, blob in command["models"].items()
                    }
                    done = threading.Event()
                    box: Dict[str, str] = {}

                    def _apply() -> None:
                        try:
                            server.reload_models(new)
                        except Exception as exc:  # noqa: BLE001
                            box["error"] = f"{type(exc).__name__}: {exc}"
                        finally:
                            done.set()

                    loop.call_soon_threadsafe(_apply)
                    done.wait(30.0)
                    _send({"op": "reloaded", "error": box.get("error")})
                elif op == "ping":
                    _send({"op": "pong"})
                elif op == "push":
                    _push(requested=True)

        if push_interval_s > 0:
            threading.Thread(
                target=_metrics_pusher,
                name=f"shard-{shard_id}-pusher",
                daemon=True,
            ).start()
        threading.Thread(
            target=_control_listener,
            name=f"shard-{shard_id}-control",
            daemon=True,
        ).start()
        await server.serve_forever()

    asyncio.run(_main())


@dataclass
class ShardHandle:
    """Parent-side view of one shard worker.

    The control pipe multiplexes two streams from the worker: replies
    to commands, and unsolicited metrics pushes.  All parent-side pipe
    reads go through :meth:`command` / :meth:`push_now` / :meth:`drain`,
    which hold ``lock`` and :meth:`absorb` any pushes they encounter —
    so the two streams never corrupt each other.
    """

    shard_id: str
    index: int
    process: multiprocessing.Process
    conn: object  # parent end of the control pipe
    host: str
    port: int
    #: Serialises command/response exchanges on the control pipe.
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: Most recent metrics push absorbed from the worker.  Survives the
    #: worker's death, so the router can still report (and export) a
    #: dead shard's last known numbers.
    latest_push: Optional[Dict] = None

    def alive(self) -> bool:
        return self.process.is_alive()

    def absorb(self, message: object) -> bool:
        """Record a metrics push; True when the message was one."""
        if isinstance(message, dict) and message.get("op") == "metrics":
            self.latest_push = message
            return True
        return False

    def drain(self) -> None:
        """Absorb queued pushes without blocking (monitor-tick duty).

        Keeps the pipe from filling up: a full pipe would block the
        worker's pusher thread while it holds the worker-side send
        lock, wedging command replies behind it.  Skips the work when a
        command exchange is in flight — that exchange absorbs pushes
        itself.
        """
        if not self.lock.acquire(blocking=False):
            return
        try:
            try:
                while self.conn.poll(0):
                    self.absorb(self.conn.recv())
            except (EOFError, OSError):
                pass
        finally:
            self.lock.release()

    def command(
        self, message: Dict, timeout: float = 30.0
    ) -> Optional[Dict]:
        """One command/reply exchange; None on timeout or a dead pipe."""
        deadline = time.monotonic() + timeout
        with self.lock:
            try:
                self.conn.send(message)
                while True:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self.conn.poll(remaining):
                        return None
                    reply = self.conn.recv()
                    if not self.absorb(reply):
                        return reply
            except (OSError, EOFError, BrokenPipeError):
                return None

    def push_now(self, timeout: float = 5.0) -> Optional[Dict]:
        """Request a fresh metrics push and wait for it (None if dead).

        Periodic pushes absorbed along the way keep ``latest_push``
        warm but don't satisfy the call — only the reply stamped
        ``requested`` does, preserving read-your-writes freshness for
        ``cluster_stats``.
        """
        deadline = time.monotonic() + timeout
        with self.lock:
            try:
                self.conn.send({"op": "push"})
                while True:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self.conn.poll(remaining):
                        return None
                    reply = self.conn.recv()
                    if self.absorb(reply) and reply.get("requested"):
                        return reply
            except (OSError, EOFError, BrokenPipeError):
                return None


# ---------------------------------------------------------------------------
# The cluster: workers + router control plane
# ---------------------------------------------------------------------------
class Cluster:
    """A sharded, replicated power-query deployment.

    ``start()`` forks the workers, builds the ring and placement map,
    and runs the router on a private event loop in a daemon thread.
    The object doubles as a context manager::

        with Cluster(models, ClusterConfig(workers=3)).start() as cluster:
            report = generate_cluster_load(
                cluster.host, cluster.router_port, "parity", transitions
            )
    """

    def __init__(
        self,
        models: Dict[str, AddPowerModel],
        config: ClusterConfig = ClusterConfig(),
    ):
        if not models:
            raise ValueError("a Cluster needs at least one model")
        self.config = config
        self.host = config.host
        self.router_port: Optional[int] = None
        self._blobs = {
            name: model_to_dict(model) for name, model in models.items()
        }
        self._placement_keys = {
            name: placement_key(name, model)
            for name, model in models.items()
        }
        self._ctx = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        self._shards: Dict[str, ShardHandle] = {}
        self._ring = HashRing(vnodes=config.vnodes)
        self._version = 0
        self._ring_payload: Optional[Dict] = None
        self._stale_payload: Optional[Dict] = None
        self._spawned = 0
        #: Guards ring/placement/shard-map mutations (router thread,
        #: monitor task and parent-thread admin calls all touch them).
        self._lock = threading.Lock()
        self._router_thread: Optional[threading.Thread] = None
        self._router_loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._workers_stopped = False
        self.started_at: Optional[float] = None
        self.prometheus: Optional[MetricsExporter] = None
        self.prometheus_port: Optional[int] = None
        #: Last build-queue gauge refresh (rate-limits queue polling).
        self._queue_polled_at = 0.0

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "Cluster":
        """Spawn the workers and the router; blocks until all are ready."""
        for _ in range(self.config.workers):
            handle = self._spawn_worker()
            with self._lock:
                self._shards[handle.shard_id] = handle
                self._ring.add(handle.shard_id)
        with self._lock:
            self._bump_ring()
        self._start_router()
        if self.config.prometheus_port is not None:
            self.prometheus = MetricsExporter(
                self._render_prometheus,
                host=self.config.host,
                port=self.config.prometheus_port,
            ).start()
            self.prometheus_port = self.prometheus.port
        self.started_at = time.time()
        return self

    def _spawn_worker(self) -> ShardHandle:
        index = self._spawned
        self._spawned += 1
        shard_id = f"s{index}"
        parent_conn, child_conn = self._ctx.Pipe()
        server_config = replace(
            self.config.server,
            host=self.config.host,
            port=0,
            shard_fault_token=index,
        )
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(
                shard_id,
                index,
                self._blobs,
                server_config,
                child_conn,
                self.config.metrics_push_interval_s,
            ),
            name=f"power-shard-{shard_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(self.config.worker_ready_timeout_s):
            process.kill()
            raise ServeConnectionError(
                f"shard {shard_id} did not report ready in "
                f"{self.config.worker_ready_timeout_s:g}s"
            )
        message = parent_conn.recv()
        if message.get("op") != "ready":
            process.kill()
            raise ServeConnectionError(
                f"shard {shard_id} failed to start: "
                f"{message.get('message', message)}"
            )
        return ShardHandle(
            shard_id=shard_id,
            index=index,
            process=process,
            conn=parent_conn,
            host=self.config.host,
            port=int(message["port"]),
        )

    def _bump_ring(self) -> None:
        """Recompute placement + payload after a membership change.

        Caller holds ``self._lock``.  The previous payload is kept as
        the stale snapshot the ``serve.router.stale_ring`` fault serves.
        """
        self._version += 1
        self._stale_payload = self._ring_payload
        placement = {
            name: self._ring.lookup(key, self.config.replication)
            for name, key in sorted(self._placement_keys.items())
        }
        self._ring_payload = {
            "version": self._version,
            "replication": self.config.replication,
            "shards": {
                shard_id: [handle.host, handle.port]
                for shard_id, handle in self._shards.items()
                if shard_id in self._ring
            },
            "placement": placement,
        }
        _RING_VERSION.set(self._version)
        _SHARDS_GAUGE.set(len(self._ring))

    # -- admin operations (parent thread or router loop) ---------------
    @property
    def shard_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._shards)

    @property
    def ring_version(self) -> int:
        with self._lock:
            return self._version

    def shard_port(self, shard_id: str) -> int:
        with self._lock:
            return self._shards[shard_id].port

    def ring_payload(self) -> Dict:
        """The current (or, under the stale-ring fault, previous) ring."""
        with self._lock:
            if (
                self._stale_payload is not None
                and faults.fires("serve.router.stale_ring")
            ):
                _STALE_RINGS.inc()
                return self._stale_payload
            assert self._ring_payload is not None
            return self._ring_payload

    def kill_shard(self, shard_id: str) -> None:
        """SIGKILL a worker (chaos/testing; the monitor sees it die)."""
        with self._lock:
            handle = self._shards[shard_id]
        handle.process.kill()
        handle.process.join(10.0)

    def drain_shard(self, shard_id: str) -> None:
        """Zero-downtime removal: un-route, then gracefully stop.

        The shard leaves the ring first (new ring version), so clients
        move away on their next refresh; the worker then flushes and
        answers everything parked before exiting, so requests already
        in flight are never dropped.
        """
        with self._lock:
            handle = self._shards[shard_id]
            if shard_id in self._ring:
                self._ring.remove(shard_id)
                self._bump_ring()
        _DRAINS.inc()
        self._stop_worker(handle)

    def reload_models(self, models: Dict[str, AddPowerModel]) -> None:
        """Push a new model set to every shard without a restart."""
        if not models:
            raise ValueError("reload_models needs at least one model")
        blobs = {name: model_to_dict(model) for name, model in models.items()}
        keys = {
            name: placement_key(name, model)
            for name, model in models.items()
        }
        with self._lock:
            handles = [
                handle
                for handle in self._shards.values()
                if handle.alive() and handle.shard_id in self._ring
            ]
        errors: List[str] = []
        for handle in handles:
            reply = handle.command({"op": "reload", "models": blobs})
            if reply is None:
                errors.append(
                    f"{handle.shard_id}: reload timed out or pipe broken"
                )
            elif reply.get("error"):
                errors.append(f"{handle.shard_id}: {reply['error']}")
        with self._lock:
            self._blobs = blobs
            self._placement_keys = keys
            self._bump_ring()
        _RELOADS.inc()
        if errors:
            raise ServeConnectionError(
                "model reload failed on some shards: " + "; ".join(errors)
            )

    def _stop_worker(self, handle: ShardHandle, timeout: float = 10.0) -> None:
        if handle.alive():
            with handle.lock:
                try:
                    handle.conn.send({"op": "stop"})
                except (OSError, BrokenPipeError):
                    pass
            handle.process.join(timeout)
            if handle.alive():  # pragma: no cover - stuck worker
                handle.process.kill()
                handle.process.join(5.0)

    def _handle_dead_shard(self, shard_id: str) -> None:
        """Monitor callback: rebalance away from a dead worker."""
        _SHARD_DEATHS.inc()
        respawn = False
        with self._lock:
            if shard_id in self._ring:
                self._ring.remove(shard_id)
                self._bump_ring()
                # Placement recomputed over the survivors: the dead
                # shard's keys fail over to live replicas.
                if len(self._ring):
                    _FAILOVERS.inc()
            respawn = self.config.restart_failed and not self._workers_stopped
        if respawn:
            try:
                handle = self._spawn_worker()
            except ServeConnectionError:  # pragma: no cover - spawn failed
                return
            with self._lock:
                self._shards[handle.shard_id] = handle
                self._ring.add(handle.shard_id)
                self._bump_ring()
            _RESTARTS.inc()

    # -- router (control plane) ----------------------------------------
    def _start_router(self) -> None:
        ready = threading.Event()
        box: Dict[str, object] = {}

        async def _main() -> None:
            self._stop_event = asyncio.Event()
            try:
                server = await asyncio.start_server(
                    self._on_router_connection,
                    host=self.config.host,
                    port=self.config.router_port,
                    limit=protocol.MAX_LINE_BYTES,
                )
            except Exception as exc:  # noqa: BLE001 - surface to caller
                box["error"] = exc
                ready.set()
                return
            self.router_port = server.sockets[0].getsockname()[1]
            self._router_loop = asyncio.get_running_loop()
            monitor = asyncio.ensure_future(self._monitor())
            ready.set()
            await self._stop_event.wait()
            monitor.cancel()
            server.close()
            await server.wait_closed()
            self._stop_workers()

        self._router_thread = threading.Thread(
            target=lambda: asyncio.run(_main()),
            name="power-cluster-router",
            daemon=True,
        )
        self._router_thread.start()
        if not ready.wait(self.config.worker_ready_timeout_s):
            raise TimeoutError("cluster router did not start in time")
        if "error" in box:
            self._stop_workers()
            raise box["error"]  # type: ignore[misc]

    async def _monitor(self) -> None:
        """Periodically detect dead workers and rebalance the ring.

        Also drains each control pipe so unsolicited metrics pushes are
        absorbed continuously (keeping ``latest_push`` — and therefore
        the Prometheus page — fresh, and the pipes from filling up).
        """
        while True:
            await asyncio.sleep(self.config.monitor_interval_s)
            with self._lock:
                handles = list(self._shards.values())
                dead = [
                    shard_id
                    for shard_id in self._ring.shards
                    if not self._shards[shard_id].alive()
                ]
            for handle in handles:
                handle.drain()
            for shard_id in dead:
                self._handle_dead_shard(shard_id)

    async def _on_router_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.CancelledError,
                    asyncio.LimitOverrunError,
                    ValueError,
                    ConnectionError,
                ):
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                response = await self._dispatch_router(line)
                try:
                    writer.write(protocol.encode(response))
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover
                pass

    async def _dispatch_router(self, line: bytes) -> Dict:
        request_id = None
        try:
            request = protocol.decode_request(line)
            request_id = request.get("id")
            context = TraceContext.from_traceparent(
                request.get("traceparent")
            )
            if context is None:
                return await self._dispatch_router_op(request, request_id)
            with use_trace_context(context):
                with get_tracer().span("router.request", op=request["op"]):
                    return await self._dispatch_router_op(
                        request, request_id
                    )
        except ProtocolError as exc:
            return protocol.error_response(request_id, exc.error_type, str(exc))
        except Exception as exc:  # noqa: BLE001 - answer, don't crash
            return protocol.error_response(
                request_id, "internal", f"{type(exc).__name__}: {exc}"
            )

    async def _dispatch_router_op(self, request: Dict, request_id) -> Dict:
        op = request["op"]
        if op == "ping":
            return protocol.ok_response(request_id, "pong")
        if op == "ring":
            return protocol.ok_response(request_id, self.ring_payload())
        if op == "cluster_stats":
            return protocol.ok_response(
                request_id, await self._cluster_stats()
            )
        if op == "healthz":
            return protocol.ok_response(request_id, self._healthz())
        if op == "slowlog":
            return protocol.ok_response(
                request_id, await self._cluster_slowlog()
            )
        if op == "shutdown":
            if self._stop_event is not None:
                self._stop_event.set()
            return protocol.ok_response(request_id, "stopping")
        raise ProtocolError("bad_request", f"unknown router op {op!r}")

    def _healthz(self) -> Dict:
        with self._lock:
            members = self._ring.shards
            shards = {
                shard_id: {
                    "port": handle.port,
                    "alive": handle.alive(),
                    "routed": handle.shard_id in self._ring,
                }
                for shard_id, handle in self._shards.items()
            }
            version = self._version
        return {
            "status": "ok" if members else "degraded",
            "ring_version": version,
            "shards": shards,
            "uptime_seconds": (
                time.time() - self.started_at if self.started_at else 0.0
            ),
        }

    async def _cluster_stats(self) -> Dict:
        """Cluster-wide report: per-shard stats + merged serve.* metrics.

        Reads the snapshots workers push over their control pipes — one
        ``push_now`` round trip per shard, run off the event loop — so
        the numbers are as fresh as the old TCP fan-out without
        competing with the data plane for shard sockets.
        """
        with self._lock:
            handles = [
                handle
                for shard_id, handle in sorted(self._shards.items())
                if shard_id in self._ring
            ]
        loop = asyncio.get_running_loop()
        pushes = await asyncio.gather(
            *(
                loop.run_in_executor(None, handle.push_now)
                for handle in handles
            )
        )
        per_shard: Dict[str, Dict] = {}
        snapshots: List[Dict] = []
        for handle, push in zip(handles, pushes):
            if push is None:
                per_shard[handle.shard_id] = {
                    "port": handle.port,
                    "reachable": False,
                }
                continue
            stats = push.get("stats", {})
            metrics = stats.get("metrics", {})
            snapshots.append(metrics)
            p99 = metrics.get("serve.request.seconds", {}).get("p99")
            per_shard[handle.shard_id] = {
                "port": handle.port,
                "reachable": True,
                "uptime_seconds": stats.get("uptime_seconds", 0.0),
                "models": stats.get("models", []),
                "requests": metrics.get("serve.requests", {}).get("value", 0),
                "latency_p99_ms": None if p99 is None else 1000.0 * p99,
                "pushed_at": push.get("ts"),
            }
        cluster_metrics = self._router_metrics()
        with self._lock:
            version = self._version
        return {
            "ring_version": version,
            "shards": per_shard,
            "metrics": merge_snapshots(snapshots),
            "router_metrics": cluster_metrics,
        }

    def _router_metrics(self) -> Dict[str, Dict]:
        """Router-local series for stats pages and scrapes.

        Cluster counters, the shared circuit-breaker state
        (``serve.breaker.*`` — how the control plane is degrading), and,
        with ``queue_spec`` configured, the build queue's depth and
        active leases refreshed by :meth:`_poll_queue_gauges`.
        """
        self._poll_queue_gauges()
        return {
            name: state
            for name, state in _MET.snapshot().items()
            if name.startswith(("serve.cluster.", "serve.breaker.", "queue."))
        }

    def _poll_queue_gauges(self) -> None:
        """Refresh ``queue.depth`` / ``queue.leases.active`` gauges.

        Rate-limited to ~2 Hz and never raising: a dead queue simply
        leaves the gauges at their last value (the breaker makes the
        failed dial cost microseconds, not a connect timeout).
        """
        spec = self.config.queue_spec
        if not spec:
            return
        now = time.monotonic()
        if now - self._queue_polled_at < 0.5:
            return
        self._queue_polled_at = now
        try:
            from repro.serve.queue import BuildQueueClient

            host, _, port = str(spec).rpartition(":")
            if not host or not port.isdigit():
                return
            with BuildQueueClient(host, int(port), timeout=2.0) as queue_client:
                stats = queue_client.call({"op": "stats"})
            _MET.gauge("queue.depth", kind="last").set(
                float(stats.get("pending_depth", 0))
            )
            _MET.gauge("queue.leases.active", kind="last").set(
                float(stats.get("active_leases", 0))
            )
        except (ReproError, OSError):
            pass  # telemetry must never fail a scrape

    async def _cluster_slowlog(self) -> Dict:
        """Merged slow-query log: every in-ring shard's entries, by time.

        Same fan-out shape as :meth:`_cluster_stats`, but over the
        shard data sockets — the slow-query log lives inside each
        shard's server process, not in the pushed metric snapshots.
        Entries are tagged with the shard that recorded them, so a
        trace id in the merged view still points at one process's
        trace file.  Knobs are uniform across a cluster (one
        ``ServerConfig``), so the top-level threshold/rate mirror the
        first reachable shard and ``sampled_out`` sums.
        """
        with self._lock:
            handles = [
                handle
                for shard_id, handle in sorted(self._shards.items())
                if shard_id in self._ring
            ]

        def fetch(handle: "ShardHandle") -> Optional[Dict]:
            try:
                with PowerQueryClient(
                    self.host, handle.port, timeout=5.0
                ) as shard_client:
                    return shard_client.slowlog()
            except (ReproError, OSError):
                return None

        loop = asyncio.get_running_loop()
        reports = await asyncio.gather(
            *(
                loop.run_in_executor(None, fetch, handle)
                for handle in handles
            )
        )
        per_shard: Dict[str, Dict] = {}
        entries: List[Dict] = []
        merged: Dict = {
            "threshold_ms": None,
            "rate": None,
            "capacity": 0,
            "sampled_out": 0,
        }
        for handle, report in zip(handles, reports):
            if report is None:
                per_shard[handle.shard_id] = {
                    "port": handle.port,
                    "reachable": False,
                }
                continue
            shard_entries = report.get("entries", [])
            per_shard[handle.shard_id] = {
                "port": handle.port,
                "reachable": True,
                "sampled_out": report.get("sampled_out", 0),
                "entries": len(shard_entries),
            }
            if merged["threshold_ms"] is None:
                merged["threshold_ms"] = report.get("threshold_ms")
                merged["rate"] = report.get("rate")
            merged["capacity"] += report.get("capacity", 0)
            merged["sampled_out"] += report.get("sampled_out", 0)
            for entry in shard_entries:
                entries.append(dict(entry, shard=handle.shard_id))
        entries.sort(key=lambda entry: entry.get("ts", 0.0))
        merged["entries"] = entries
        merged["shards"] = per_shard
        return merged

    def _render_prometheus(self) -> str:
        """One Prometheus text page from the latest pushed snapshots.

        Per-shard series carry a ``shard`` label (never an unlabelled
        merged duplicate, which would double-count under a summing
        scraper); ``up{shard=...}`` reflects liveness *and* routing, so
        a killed or drained shard drops to 0 within one monitor tick.
        Router-local ``serve.cluster.*`` series export unlabelled.
        """
        with self._lock:
            handles = sorted(self._shards.items())
            routed = set(self._ring.shards)
        labelled: Dict[str, Dict] = {}
        for shard_id, handle in handles:
            push = handle.latest_push or {}
            snapshot = dict(push.get("stats", {}).get("metrics", {}))
            snapshot["up"] = {
                "type": "gauge",
                "kind": "last",
                "value": (
                    1.0
                    if handle.alive() and shard_id in routed
                    else 0.0
                ),
            }
            labelled[shard_id] = snapshot
        return render_metrics(
            labelled, label="shard", unlabeled=self._router_metrics()
        )

    # -- shutdown ------------------------------------------------------
    def _stop_workers(self) -> None:
        with self._lock:
            if self._workers_stopped:
                return
            self._workers_stopped = True
            handles = list(self._shards.values())
        for handle in handles:
            self._stop_worker(handle)

    def stop(self, timeout: float = 15.0) -> None:
        """Stop the router and gracefully drain every worker."""
        if self.prometheus is not None:
            self.prometheus.stop()
            self.prometheus = None
        if self._router_loop is not None and self._stop_event is not None:
            try:
                self._router_loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:  # loop already closed
                pass
        if self._router_thread is not None:
            self._router_thread.join(timeout)
        self._stop_workers()
        self._write_router_trace()

    def _write_router_trace(self) -> None:
        """Export this (router) process's spans for ``repro trace-merge``.

        Workers write their own ``trace-<pid>-<port>.json`` at graceful
        stop; this file adds the router hops — and, when load was
        generated from this process, the client hops too.
        """
        trace_dir = self.config.server.trace_dir
        tracer = get_tracer()
        if not trace_dir or not tracer.enabled:
            return
        if not hasattr(tracer, "write_chrome"):
            return
        try:
            os.makedirs(trace_dir, exist_ok=True)
            tracer.write_chrome(
                os.path.join(trace_dir, f"trace-{os.getpid()}-router.json")
            )
        except OSError:  # noqa: BLE001 - telemetry must not fail shutdown
            pass

    def wait(self) -> None:
        """Block until the router thread exits (shutdown op or stop())."""
        if self._router_thread is not None:
            self._router_thread.join()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_cluster(
    models: Dict[str, AddPowerModel],
    config: ClusterConfig = ClusterConfig(),
) -> Cluster:
    """Build and start a :class:`Cluster`; returns the running handle."""
    return Cluster(models, config).start()


# ---------------------------------------------------------------------------
# Shard-aware client
# ---------------------------------------------------------------------------
class ClusterClient:
    """Blocking shard-aware client: ring from the router, data from shards.

    ``evaluate``/``evaluate_pairs`` spray requests round-robin across a
    model's replica set.  A transport failure (or a shard that no longer
    holds the model mid-reload) marks the endpoint dead, re-fetches the
    ring, and retries on the next replica — falling back to any ring
    member, so a stale ring cannot strand a request while one shard
    still answers.
    """

    def __init__(
        self,
        host: str,
        router_port: int,
        timeout: float = 30.0,
        retry: RetryPolicy = RetryPolicy(),
        rng_seed: Optional[int] = None,
    ):
        self.host = host
        self.router_port = router_port
        self.timeout = timeout
        self.retry = retry
        self._router = PowerQueryClient(
            host, router_port, timeout=timeout, retry=retry, rng_seed=rng_seed
        )
        self._shard_clients: Dict[Tuple[str, int], PowerQueryClient] = {}
        self._ring: Optional[Dict] = None
        self._dead: set = set()
        self._spray = 0
        import random as _random

        self._rng = _random.Random(rng_seed)

    # -- control plane -------------------------------------------------
    def ring(self, refresh: bool = False) -> Dict:
        """The cached ring payload, fetching from the router on demand."""
        if self._ring is None or refresh:
            self._ring = self._router.call({"op": "ring"})
            self._dead = set()
            _CLIENT_RING_REFRESHES.inc()
        return self._ring

    def cluster_stats(self) -> Dict:
        """The router's aggregated cluster-wide stats report."""
        return self._router.call({"op": "cluster_stats"})

    def healthz(self) -> Dict:
        return self._router.call({"op": "healthz"})

    def slowlog(self) -> Dict:
        """The router's merged slow-query log (entries tagged by shard)."""
        return self._router.call({"op": "slowlog"})

    def shutdown_cluster(self) -> None:
        """Ask the router to stop the whole cluster (never retried)."""
        self._router.call({"op": "shutdown"}, idempotent=False)

    # -- data plane ----------------------------------------------------
    def _endpoints_for(self, model: str) -> List[Tuple[str, int]]:
        """Replica endpoints first (rotated for spray), then the rest."""
        ring = self.ring()
        shards = ring.get("shards", {})
        replicas = [
            shard_id
            for shard_id in ring.get("placement", {}).get(model, [])
            if shard_id in shards
        ]
        if replicas:
            self._spray += 1
            pivot = self._spray % len(replicas)
            replicas = replicas[pivot:] + replicas[:pivot]
        others = [s for s in sorted(shards) if s not in replicas]
        ordered = replicas + others
        return [tuple(shards[shard_id]) for shard_id in ordered]

    def _client_for(self, endpoint: Tuple[str, int]) -> PowerQueryClient:
        client = self._shard_clients.get(endpoint)
        if client is None:
            client = PowerQueryClient(
                endpoint[0], endpoint[1], timeout=self.timeout, retry=None
            )
            self._shard_clients[endpoint] = client
        return client

    def _drop_endpoint(self, endpoint: Tuple[str, int]) -> None:
        client = self._shard_clients.pop(endpoint, None)
        if client is not None:
            client.close()
        self._dead.add(endpoint)

    def _call_sharded(self, model: str, payload: Dict, deadline=None):
        last_error: Optional[Exception] = None
        for attempt in range(1, self.retry.max_attempts + 1):
            if attempt > 1:
                delay = self.retry.delay_s(attempt - 1, self._rng)
                if deadline is not None and deadline.remaining_s() <= delay:
                    break  # out of budget: report, don't sleep past it
                time.sleep(delay)
                self.ring(refresh=True)
            tried_any = False
            for nth, endpoint in enumerate(self._endpoints_for(model)):
                if endpoint in self._dead:
                    continue
                if deadline is not None and deadline.expired:
                    break
                tried_any = True
                try:
                    # Each hop re-stamps the *current* remainder, so one
                    # budget spans every failover and ring sweep.
                    result = protocol.unwrap_response(
                        self._client_for(endpoint).request(
                            payload, deadline=deadline
                        )
                    )
                    if nth > 0:
                        _CLIENT_FAILOVERS.inc()
                    return result
                except ServeConnectionError as exc:
                    last_error = exc
                    self._drop_endpoint(endpoint)
                except protocol.ResponseError as exc:
                    if exc.error_type in ("unavailable", "unknown_model"):
                        # Shed, draining shard, or mid-reload placement
                        # drift: try the next replica / a fresh ring.
                        last_error = exc
                        continue
                    raise
            if deadline is not None and deadline.expired:
                break
            if not tried_any:
                # Every known endpoint is marked dead: force a refresh.
                self.ring(refresh=True)
        if deadline is not None and deadline.expired:
            raise DeadlineExceededError(
                f"deadline expired routing model {model!r}: {last_error}"
            )
        raise ServeConnectionError(
            f"no shard answered for model {model!r} after "
            f"{self.retry.max_attempts} ring sweeps: {last_error}"
        )

    def evaluate(self, model: str, initial, final, deadline=None) -> float:
        """Capacitance (fF) of one transition, routed to a replica."""
        result = self._call_sharded(
            model,
            {
                "op": "evaluate",
                "model": model,
                "initial": _bits(initial),
                "final": _bits(final),
            },
            deadline=deadline,
        )
        return float(result["capacitance_fF"])

    def evaluate_pairs(
        self, model: str, pairs: Sequence[Tuple[object, object]],
        deadline=None,
    ) -> List[float]:
        """Capacitances for a client-side batch, routed to a replica."""
        result = self._call_sharded(
            model,
            {
                "op": "evaluate",
                "model": model,
                "pairs": [[_bits(i), _bits(f)] for i, f in pairs],
            },
            deadline=deadline,
        )
        return [float(v) for v in result["capacitances_fF"]]

    def close(self) -> None:
        for client in self._shard_clients.values():
            client.close()
        self._shard_clients.clear()
        self._router.close()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Shard-aware concurrent load generation
# ---------------------------------------------------------------------------
class _RingCache:
    """Shared, version-coalesced ring cache for one load-generation run."""

    def __init__(
        self,
        host: str,
        router_port: int,
        counters: Dict[str, int],
        trace_root: Optional[TraceContext] = None,
    ):
        self.host = host
        self.router_port = router_port
        self.counters = counters
        self.trace_root = trace_root
        self.payload: Optional[Dict] = None
        self._lock = asyncio.Lock()

    async def fetch(self, stale_version: Optional[int] = None) -> Dict:
        """The ring, re-fetched when the cached one is ``stale_version``.

        Concurrent workers that all saw the same failure coalesce into
        one router round trip.
        """
        async with self._lock:
            if self.payload is not None and (
                stale_version is None
                or self.payload.get("version", -1) != stale_version
            ):
                return self.payload
            request = {"id": 0, "op": "ring"}
            hop = (
                self.trace_root.child()
                if self.trace_root is not None
                else None
            )
            if hop is not None:
                request["traceparent"] = hop.to_traceparent()
            reader, writer = await asyncio.open_connection(
                self.host, self.router_port
            )

            async def roundtrip() -> bytes:
                writer.write(protocol.encode(request))
                await writer.drain()
                return await reader.readline()

            try:
                if hop is not None:
                    with use_trace_context(hop):
                        with get_tracer().span("serve.client.ring"):
                            line = await roundtrip()
                else:
                    line = await roundtrip()
            finally:
                writer.close()
            if not line:
                raise ServeConnectionError("router closed the connection")
            reply = json.loads(line.decode("utf-8"))
            self.payload = protocol.unwrap_response(reply)
            self.counters["ring_refreshes"] += 1
            return self.payload


async def _cluster_load_worker(
    ring: _RingCache,
    model: str,
    transitions: Sequence[Tuple[str, str]],
    requests: int,
    offset: int,
    latencies: List[float],
    counters: Dict[str, int],
    retry: RetryPolicy,
    trace_root: Optional[TraceContext] = None,
) -> None:
    import random as _random

    rng = _random.Random(1000003 * offset + 17)
    tracer = get_tracer()
    reader = writer = None
    endpoint: Optional[Tuple[str, int]] = None
    bad: set = set()
    bad_version = -1

    def endpoints(payload: Dict) -> List[Tuple[str, int]]:
        shards = payload.get("shards", {})
        replicas = [
            s for s in payload.get("placement", {}).get(model, [])
            if s in shards
        ]
        if replicas:  # spray: worker i pins to replica i, rotating on retry
            pivot = offset % len(replicas)
            replicas = replicas[pivot:] + replicas[:pivot]
        others = [s for s in sorted(shards) if s not in replicas]
        return [tuple(shards[s]) for s in replicas + others]

    async def connect(payload: Dict) -> bool:
        nonlocal reader, writer, endpoint, bad, bad_version
        if writer is not None:
            return True
        if payload.get("version", -1) != bad_version:
            bad = set()
            bad_version = payload.get("version", -1)
        for candidate in endpoints(payload):
            if candidate in bad:
                continue
            try:
                reader, writer = await asyncio.open_connection(*candidate)
                endpoint = candidate
                return True
            except OSError:
                bad.add(candidate)
        return False

    def drop() -> None:
        nonlocal reader, writer, endpoint
        if writer is not None:
            writer.close()
        if endpoint is not None:
            bad.add(endpoint)
        reader = writer = endpoint = None

    try:
        payload = await ring.fetch()
        for k in range(requests):
            initial, final = transitions[(offset + k) % len(transitions)]
            request = {
                "id": k,
                "op": "evaluate",
                "model": model,
                "initial": initial,
                "final": final,
            }
            # One trace hop per request; each *attempt* derives a fresh
            # span id from it, so retries after a connection reset stay
            # in the same trace but are distinguishable hops.  In
            # propagation-only mode (no spans recorded) the request
            # context is skipped and attempts mint wire headers straight
            # off the root.
            request_ctx = (
                trace_root.child()
                if trace_root is not None and tracer.record
                else None
            )
            started = time.perf_counter()
            answered = False
            first_endpoint = None
            for attempt in range(1, retry.max_attempts + 1):
                if attempt > 1:
                    counters["retries"] += 1
                    await asyncio.sleep(retry.delay_s(attempt - 1, rng))
                if not await connect(payload):
                    # Every endpoint in this ring failed: force a refresh.
                    try:
                        payload = await ring.fetch(
                            stale_version=payload.get("version")
                        )
                    except (OSError, ServeConnectionError):
                        continue
                    bad = set()
                    bad_version = payload.get("version", -1)
                    continue
                if first_endpoint is None:
                    first_endpoint = endpoint
                hop = (
                    request_ctx.child() if request_ctx is not None else None
                )
                try:
                    if hop is not None:
                        wire = dict(
                            request, traceparent=hop.to_traceparent()
                        )
                        with use_trace_context(hop):
                            with tracer.span(
                                "serve.client.request",
                                model=model,
                                attempt=attempt,
                            ):
                                writer.write(protocol.encode(wire))
                                await writer.drain()
                                line = await reader.readline()
                    elif trace_root is not None:
                        # Propagation only: fresh span id per attempt
                        # on the wire, no local span.  The request dict
                        # is per-request, so overwriting the header in
                        # place is attempt-safe.
                        request["traceparent"] = (
                            trace_root.child_traceparent()
                        )
                        writer.write(protocol.encode(request))
                        await writer.drain()
                        line = await reader.readline()
                    else:
                        writer.write(protocol.encode(request))
                        await writer.drain()
                        line = await reader.readline()
                except (OSError, asyncio.IncompleteReadError):
                    line = b""
                if not line:  # shard died / reset mid-request
                    drop()
                    counters["reconnects"] += 1
                    try:
                        payload = await ring.fetch(
                            stale_version=payload.get("version")
                        )
                    except (OSError, ServeConnectionError):
                        pass
                    continue
                reply = json.loads(line.decode("utf-8"))
                if reply.get("ok"):
                    answered = True
                    if (
                        first_endpoint is not None
                        and endpoint != first_endpoint
                    ):
                        counters["failovers"] += 1
                        _CLIENT_FAILOVERS.inc()
                    break
                error_type = (reply.get("error") or {}).get("type")
                if error_type == "unavailable" and retry.retry_unavailable:
                    continue  # shed: back off on the same socket
                if error_type == "unknown_model":
                    drop()  # placement drift mid-reload: move shards
                    continue
                break  # other structured errors are not retryable
            latencies.append(time.perf_counter() - started)
            if not answered:
                counters["errors"] += 1
    finally:
        if writer is not None:
            writer.close()


def generate_cluster_load(
    host: str,
    router_port: int,
    model: str,
    transitions: Sequence[Tuple[object, object]],
    clients: int = 64,
    requests_per_client: int = 50,
    retry: RetryPolicy = RetryPolicy(),
) -> LoadReport:
    """Hammer a cluster with N shard-aware single-transition streams.

    The cluster analogue of :func:`repro.serve.client.generate_load`:
    each of ``clients`` connections fetches the ring (one shared,
    coalesced cache per run), pins itself to one replica of ``model``
    (spraying the replica set across workers), and fails over — refresh
    ring, reconnect to the next replica — when its shard stops
    answering.  The report's ``failovers``/``ring_refreshes`` count the
    recoveries; a chaos-killed shard must show up there, never in
    ``errors``.

    When tracing is enabled in this process, the whole run shares one
    ``trace_id`` (reported on the :class:`LoadReport`): every request is
    a child hop of it and every attempt a child of its request, so
    ``repro trace-merge`` can reassemble client → router → shard →
    kernel timelines across processes.
    """
    if not transitions:
        raise ReproError("generate_cluster_load needs at least one transition")
    normalized = [(_bits(i), _bits(f)) for i, f in transitions]
    latencies: List[float] = []
    counters = {
        "errors": 0,
        "retries": 0,
        "reconnects": 0,
        "failovers": 0,
        "ring_refreshes": 0,
    }
    trace_root = _trace_root()

    async def _run() -> float:
        ring = _RingCache(host, router_port, counters, trace_root=trace_root)
        await ring.fetch()
        started = time.perf_counter()
        await asyncio.gather(
            *(
                _cluster_load_worker(
                    ring,
                    model,
                    normalized,
                    requests_per_client,
                    worker,
                    latencies,
                    counters,
                    retry,
                    trace_root,
                )
                for worker in range(clients)
            )
        )
        return time.perf_counter() - started

    elapsed = asyncio.run(_run())
    total = clients * requests_per_client
    ordered = sorted(latencies)
    return LoadReport(
        clients=clients,
        requests=total,
        errors=counters["errors"],
        seconds=elapsed,
        requests_per_sec=total / elapsed if elapsed > 0 else 0.0,
        latency_p50_ms=1000.0 * _percentile(ordered, 0.50),
        latency_p99_ms=1000.0 * _percentile(ordered, 0.99),
        latency_mean_ms=(
            1000.0 * sum(ordered) / len(ordered) if ordered else 0.0
        ),
        retries=counters["retries"],
        reconnects=counters["reconnects"],
        failovers=counters["failovers"],
        ring_refreshes=counters["ring_refreshes"],
        trace_id=trace_root.trace_id if trace_root is not None else None,
    )


__all__ = [
    "Cluster",
    "ClusterClient",
    "ClusterConfig",
    "HashRing",
    "ShardHandle",
    "generate_cluster_load",
    "placement_key",
    "start_cluster",
]
