"""A minimal S3-style object server over JSON lines.

:class:`ObjectStoreServer` is the serving half of
:class:`~repro.serve.storage.ObjectStoreBackend`: a small asyncio TCP
server speaking the framing of :mod:`repro.serve.protocol` with five
operations —

``{"id": .., "op": "obj.put", "name": N, "data": B64, "sha256": H}``
    Atomically publish an object.  The server verifies the payload
    against the caller-supplied hash before accepting it, so a corrupted
    upload is rejected with ``bad_request`` instead of stored.
``{"id": .., "op": "obj.get", "name": N}``
    ``{"data": B64, "sha256": H, "mtime": T}`` or a ``not_found`` error.
``{"id": .., "op": "obj.head", "name": N}``
    Metadata only: ``{"size": S, "sha256": H, "mtime": T}``.
``{"id": .., "op": "obj.list", "prefix": P}``
    Sorted object names under a prefix.
``{"id": .., "op": "obj.delete", "name": N}``
    ``{"deleted": bool}``.

Plus the house ``ping`` / ``stats`` / ``shutdown`` ops.  Objects live in
an in-memory dict by default, or under a root directory (via
:class:`~repro.serve.storage.LocalDirBackend` semantics: temp file +
rename) when ``root`` is given — so a test server is hermetic while a
long-lived one survives restarts.  Either way, ``put`` replaces the
whole value at once: readers observe complete payloads only, which is
the atomicity contract the model store relies on.

Persistent roots carry a journal-backed index (a
:class:`~repro.serve.wal.WriteAheadLog` under ``<root>/.index/``): every
accepted ``put`` journals ``{name, sha256}`` *before* the file is
written.  On restart the index is replayed and reconciled against the
directory — a file whose bytes do not hash to its journaled digest is a
half-written leftover of a crashed incarnation and is **deleted, never
served** (``objstore.recovery.dropped``); files present on disk but
absent from the index (data predating the index) are rehashed and
adopted (``objstore.recovery.adopted``).  A SIGKILL mid-``put`` thus
costs at most the object being written, and only until its uploader
retries.

This server exists for tests, smokes and small deployments; the point of
the backend protocol is that a real S3/GCS implementation could replace
it without touching :class:`~repro.serve.store.ModelStore`.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.obs.metrics import get_metrics
from repro.serve import protocol
from repro.serve.protocol import ProtocolError
from repro.serve.wal import WriteAheadLog

_MET = get_metrics()
_REQUESTS = _MET.counter("objstore.requests")
_PUTS = _MET.counter("objstore.puts")
_GETS = _MET.counter("objstore.gets")
_DELETES = _MET.counter("objstore.deletes")
_BYTES_IN = _MET.counter("objstore.bytes_in")
_BYTES_OUT = _MET.counter("objstore.bytes_out")
_REJECTED_PUTS = _MET.counter("objstore.rejected_puts")
_RECOVERY_DROPPED = _MET.counter("objstore.recovery.dropped")
_RECOVERY_ADOPTED = _MET.counter("objstore.recovery.adopted")

#: Directory under a persistent root holding the index journal; never
#: listed or served as objects.
_INDEX_DIR = ".index"


@dataclass(frozen=True)
class ObjectStoreConfig:
    """Tunables of one :class:`ObjectStoreServer`."""

    host: str = "127.0.0.1"
    #: 0 = pick an ephemeral port (read it back from ``server.port``).
    port: int = 0
    #: When set, objects persist as files under this directory (atomic
    #: writes); None keeps them in memory for hermetic tests.
    root: Optional[str] = None
    #: fsync every index-journal append (persistent roots only).
    wal_fsync: bool = True
    #: Compact the index journal every this-many records.
    wal_compact_every: int = 512


class ObjectStoreServer:
    """Serve put/get/list/head/delete over JSON lines."""

    def __init__(self, config: ObjectStoreConfig = ObjectStoreConfig()):
        self.config = config
        self.port: Optional[int] = None
        self.started_at: Optional[float] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._stopping = False
        # name -> (data, sha256, mtime); replaced wholesale on put, so a
        # concurrent reader sees the old or the new tuple, never a mix.
        self._objects: Dict[str, Tuple[bytes, str, float]] = {}
        self._disk = None
        self._wal: Optional[WriteAheadLog] = None
        if config.root is not None:
            from repro.serve.storage import LocalDirBackend

            self._disk = LocalDirBackend(config.root)
            self._wal = WriteAheadLog(
                os.path.join(config.root, _INDEX_DIR),
                name="objindex",
                fsync=config.wal_fsync,
                compact_every=config.wal_compact_every,
            )
            self._recover_root()

    # ------------------------------------------------------------------
    # Durability: journal-backed index (persistent roots)
    # ------------------------------------------------------------------
    def _snapshot_index(self) -> Dict:
        return {
            "objects": {
                name: {"sha256": digest, "mtime": mtime}
                for name, (_, digest, mtime) in self._objects.items()
            }
        }

    def _recover_root(self) -> None:
        """Replay the index journal and reconcile it against the disk.

        The invariant this restores: every object served has bytes that
        hash to the digest its uploader claimed.  Three cases per file —
        indexed and matching (serve), indexed but mismatched or missing
        (a crashed incarnation's half-written put: delete, never serve),
        on disk but unindexed (data predating the index: adopt).
        """
        assert self._disk is not None and self._wal is not None
        state, tail = self._wal.recover()
        index: Dict[str, Dict] = {}
        if state is not None:
            index = dict(state.get("objects", {}))
        for record in tail:
            if record.get("op") == "put":
                index[record["name"]] = {
                    "sha256": record.get("sha256"),
                    "mtime": record.get("mtime", 0.0),
                }
            elif record.get("op") == "delete":
                index.pop(record.get("name"), None)
        for name in self._disk.list():
            if name.startswith(_INDEX_DIR + "/"):
                continue  # the journal itself is not an object
            try:
                data = self._disk.get(name)
            except OSError:  # pragma: no cover - racing writer/cleaner
                continue
            digest = hashlib.sha256(data).hexdigest()
            expected = index.get(name)
            if expected is None:
                _RECOVERY_ADOPTED.inc()
                self._objects[name] = (data, digest, time.time())
            elif expected.get("sha256") == digest:
                self._objects[name] = (
                    data,
                    digest,
                    float(expected.get("mtime") or time.time()),
                )
            else:
                # Journaled intent never completed on disk (torn write
                # at the final path).  Serving it would hand out bytes
                # nobody ever uploaded; deleting costs one retried put.
                _RECOVERY_DROPPED.inc()
                self._disk.delete(name)
        # An indexed name with no file: the put journaled but never
        # reached the disk.  Fold a clean snapshot so the next restart
        # replays none of this history.
        self._wal.compact(self._snapshot_index())

    # ------------------------------------------------------------------
    # Lifecycle (mirrors PowerQueryServer)
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._stop_event is not None
        await self._stop_event.wait()
        await self.stop()

    def request_stop(self) -> None:
        if self._stop_event is not None:
            self._stop_event.set()

    async def stop(self) -> None:
        if self._stopping:
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._wal is not None:
            self._wal.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._stopping:
                try:
                    line = await reader.readline()
                except asyncio.CancelledError:
                    break
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        protocol.encode(
                            protocol.error_response(
                                None, "protocol", "request line too long"
                            )
                        )
                    )
                    break
                except ConnectionError:
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                _BYTES_IN.inc(len(line))
                response = self._handle(line)
                payload = protocol.encode(response)
                _BYTES_OUT.inc(len(payload))
                try:
                    writer.write(payload)
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover - broken transport
                pass

    def _handle(self, line: bytes) -> Dict:
        request_id = None
        try:
            request = protocol.decode_request(line)
            request_id = request.get("id")
            _REQUESTS.inc()
            return protocol.ok_response(
                request_id, self._dispatch(request["op"], request)
            )
        except ProtocolError as exc:
            return protocol.error_response(request_id, exc.error_type, str(exc))
        except Exception as exc:  # noqa: BLE001 - answer, don't crash
            return protocol.error_response(
                request_id, "internal", f"{type(exc).__name__}: {exc}"
            )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def _require_object(self, name: str) -> Tuple[bytes, str, float]:
        held = self._objects.get(name)
        if held is None:
            raise ProtocolError("not_found", f"no object {name!r}")
        return held

    def _dispatch(self, op: str, request: Dict):
        if op == "obj.put":
            name = protocol.require_field(request, "name")
            blob = protocol.require_field(request, "data")
            claimed = protocol.require_field(request, "sha256")
            try:
                data = base64.b64decode(blob, validate=True)
            except Exception:  # noqa: BLE001 - malformed base64
                raise ProtocolError(
                    "bad_request", "'data' must be valid base64"
                ) from None
            digest = hashlib.sha256(data).hexdigest()
            if digest != claimed:
                _REJECTED_PUTS.inc()
                raise ProtocolError(
                    "bad_request",
                    f"payload hash {digest[:12]} != claimed {claimed[:12]}; "
                    "upload corrupted in transit",
                )
            mtime = time.time()
            if self._wal is not None:
                # Journal the intent *before* the file write: a name on
                # disk that is not index-matching is then provably a
                # half-written leftover, and recovery deletes it.
                self._wal.append(
                    {
                        "op": "put",
                        "name": name,
                        "sha256": digest,
                        "size": len(data),
                        "mtime": mtime,
                    }
                )
            if self._disk is not None:
                self._disk.put(name, data)
            self._objects[name] = (data, digest, mtime)
            if self._wal is not None:
                self._wal.maybe_compact(self._snapshot_index())
            _PUTS.inc()
            return {"size": len(data), "sha256": digest}
        if op == "obj.get":
            name = protocol.require_field(request, "name")
            data, digest, mtime = self._require_object(name)
            _GETS.inc()
            return {
                "data": base64.b64encode(data).decode("ascii"),
                "sha256": digest,
                "mtime": mtime,
            }
        if op == "obj.head":
            name = protocol.require_field(request, "name")
            data, digest, mtime = self._require_object(name)
            return {"size": len(data), "sha256": digest, "mtime": mtime}
        if op == "obj.list":
            prefix = str(request.get("prefix") or "")
            return {
                "names": sorted(
                    name for name in self._objects if name.startswith(prefix)
                )
            }
        if op == "obj.delete":
            name = protocol.require_field(request, "name")
            if self._wal is not None and (
                name in self._objects or self._disk.head(name) is not None
            ):
                self._wal.append({"op": "delete", "name": name})
            existed = self._objects.pop(name, None) is not None
            if self._disk is not None:
                existed = self._disk.delete(name) or existed
            if existed:
                _DELETES.inc()
            return {"deleted": existed}
        if op == "ping":
            return "pong"
        if op == "stats":
            result = {
                "objects": len(self._objects),
                "bytes": sum(len(d) for d, _, _ in self._objects.values()),
                "uptime_seconds": (
                    time.time() - self.started_at if self.started_at else 0.0
                ),
            }
            if self._wal is not None:
                result["wal"] = self._wal.stats()
            return result
        if op == "shutdown":
            self.request_stop()
            return "stopping"
        raise ProtocolError("bad_request", f"unknown op {op!r}")


# ---------------------------------------------------------------------------
# Thread-hosted server (tests, CLI, smokes)
# ---------------------------------------------------------------------------
@dataclass
class ObjectStoreHandle:
    """An object server running on a private loop in a daemon thread."""

    server: ObjectStoreServer
    thread: threading.Thread
    loop: asyncio.AbstractEventLoop

    @property
    def host(self) -> str:
        return self.server.config.host

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    @property
    def spec(self) -> str:
        """The ``obj://host:port`` spec clients/backends dial."""
        return f"obj://{self.host}:{self.port}"

    def stop(self, timeout: float = 10.0) -> None:
        try:
            self.loop.call_soon_threadsafe(self.server.request_stop)
        except RuntimeError:  # loop already closed
            pass
        self.thread.join(timeout)

    def __enter__(self) -> "ObjectStoreHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_object_store(
    config: ObjectStoreConfig = ObjectStoreConfig(),
    ready_timeout: float = 30.0,
) -> ObjectStoreHandle:
    """Run an :class:`ObjectStoreServer` in a daemon thread."""
    server = ObjectStoreServer(config)
    ready = threading.Event()
    box: Dict[str, object] = {}

    async def _main() -> None:
        try:
            await server.start()
        except Exception as exc:  # noqa: BLE001 - surface to caller
            box["error"] = exc
            ready.set()
            return
        box["loop"] = asyncio.get_running_loop()
        ready.set()
        await server.serve_forever()

    thread = threading.Thread(
        target=lambda: asyncio.run(_main()), name="object-store", daemon=True
    )
    thread.start()
    if not ready.wait(ready_timeout):
        raise TimeoutError("object store did not start in time")
    if "error" in box:
        thread.join(1.0)
        raise box["error"]  # type: ignore[misc]
    return ObjectStoreHandle(server=server, thread=thread, loop=box["loop"])  # type: ignore[arg-type]
