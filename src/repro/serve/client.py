"""Clients for the power-query service.

- :class:`PowerQueryClient` — a small synchronous JSON-lines client over a
  plain socket: one in-flight request at a time, blocking semantics,
  usable from tests, scripts and the ``repro query`` CLI without any
  asyncio plumbing.  Transport failures surface as typed
  :class:`~repro.errors.ServeConnectionError`\\ s, and an optional
  :class:`RetryPolicy` makes idempotent calls survive connection resets
  and ``unavailable`` load-shed replies by reconnecting with
  exponential backoff.
- :func:`generate_load` — a concurrent load generator: N asyncio client
  connections each issue a stream of single-transition ``evaluate``
  requests and time every round trip, producing the requests/sec and
  latency-percentile numbers the serving benchmark reports.  It applies
  the same retry policy per request, so injected resets degrade latency
  instead of failing the run.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    OverloadError,
    ReproError,
    ServeConnectionError,
)
from repro.obs.metrics import get_metrics
from repro.obs.trace import (
    TraceContext,
    current_trace_context,
    get_tracer,
    new_trace_context,
    use_trace_context,
)
from repro.serve import protocol
from repro.serve.breaker import CircuitBreaker
from repro.serve.protocol import Deadline, ResponseError, unwrap_response

_MET = get_metrics()
_CLIENT_RETRIES = _MET.counter("serve.client.retries")
_CLIENT_RECONNECTS = _MET.counter("serve.client.reconnects")
_CLIENT_DEADLINE_ABANDONED = _MET.counter("serve.client.deadline_abandoned")


def _bits(pattern) -> str:
    """Accept a 0/1 string or an int/bool sequence; return the bit string."""
    if isinstance(pattern, str):
        return pattern
    return "".join("1" if int(b) else "0" for b in pattern)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for idempotent client calls.

    Attempt ``k`` (1-based) sleeps
    ``min(max_delay_s, base_delay_s * multiplier**(k-1))`` scaled by a
    uniform ±``jitter`` fraction before retrying.  ``retry_unavailable``
    additionally retries structured ``unavailable`` (load-shed) replies;
    exhausting those raises :class:`~repro.errors.OverloadError`.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    retry_unavailable: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("retry delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        delay = min(
            self.max_delay_s,
            self.base_delay_s * self.multiplier ** max(0, attempt - 1),
        )
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)


class PowerQueryClient:
    """Blocking JSON-lines client for one server connection.

    With a :class:`RetryPolicy`, idempotent operations transparently
    reconnect and retry after transport failures (reset, timeout,
    refused) and — by policy — after ``unavailable`` load-shed replies.
    Without one (the default) every transport failure surfaces
    immediately as a :class:`~repro.errors.ServeConnectionError`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        rng_seed: Optional[int] = None,
        breaker: Optional[CircuitBreaker] = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        #: Shared per-endpoint circuit breaker; None disables gating.
        self.breaker = breaker
        self._rng = random.Random(rng_seed)
        self._sock: Optional[socket.socket] = None
        self._stream = None
        self._next_id = 0
        if retry is None:
            self._connect()
        else:
            # With a retry policy the initial dial is best-effort: a
            # server mid-restart answers "refused" for a moment, and the
            # first call redials under the policy anyway.
            try:
                self._connect()
            except ServeConnectionError:
                pass

    # -- plumbing ------------------------------------------------------
    def _connect(self) -> None:
        if self._sock is not None:
            return
        if self.breaker is not None and not self.breaker.allow():
            raise CircuitOpenError(
                f"circuit open for {self.host}:{self.port}; "
                f"not dialing a known-dead endpoint"
            )
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            if self.breaker is not None:
                self.breaker.record_failure()
            raise ServeConnectionError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from exc
        if self.breaker is not None:
            # A completed TCP handshake is the probe's evidence of life;
            # closing here keeps a connect-only client from wedging the
            # half-open probe slot.
            self.breaker.record_success()
        self._stream = self._sock.makefile("rwb")

    def _teardown(self) -> None:
        """Drop the (possibly broken) connection; the next call redials."""
        stream, sock, self._stream, self._sock = (
            self._stream, self._sock, None, None,
        )
        for closable in (stream, sock):
            if closable is None:
                continue
            try:
                closable.close()
            except OSError:  # pragma: no cover - already-dead socket
                pass

    def request(
        self, payload: Dict, deadline: Optional[Deadline] = None
    ) -> Dict:
        """Send one request object and block for its response envelope.

        Transport failures (timeout, reset, server gone) raise
        :class:`~repro.errors.ServeConnectionError`; use :meth:`call`
        for policy-driven retries.  With a ``deadline``, the remainder
        is stamped onto the wire (``deadline_ms``) and the socket wait
        is capped at it, so a stuck server cannot hold the caller past
        its budget.
        """
        self._connect()
        if "id" not in payload:
            self._next_id += 1
            payload = dict(payload, id=self._next_id)
        wait_s = self.timeout
        if deadline is not None:
            payload = deadline.stamp(payload)
            wait_s = min(self.timeout, max(0.001, deadline.remaining_s()))
        try:
            if self._sock is not None and wait_s != self.timeout:
                self._sock.settimeout(wait_s)
            self._stream.write(protocol.encode(payload))
            self._stream.flush()
            line = self._stream.readline()
        except socket.timeout as exc:
            raise ServeConnectionError(
                f"request timed out after {wait_s:g}s"
            ) from exc
        except (OSError, ValueError) as exc:
            # ValueError: writing to a stream another path already closed.
            raise ServeConnectionError(f"connection failed: {exc}") from exc
        finally:
            if self._sock is not None and wait_s != self.timeout:
                try:
                    self._sock.settimeout(self.timeout)
                except OSError:  # pragma: no cover - dying socket
                    pass
        if not line:
            raise ServeConnectionError("server closed the connection")
        return json.loads(line.decode("utf-8"))

    def _traced(self, payload: Dict) -> Dict:
        """Inject the active trace context as a fresh wire hop.

        Called once per *attempt*, so a retried request keeps its
        trace_id (it is the same logical operation) but gets a fresh
        span_id (it is a distinct hop) — the merged timeline shows every
        attempt individually.  No active context, no change.
        """
        context = current_trace_context()
        if context is None or "traceparent" in payload:
            return payload
        return dict(
            payload, traceparent=context.child().to_traceparent()
        )

    def call(
        self,
        payload: Dict,
        idempotent: bool = True,
        deadline: Optional[Deadline] = None,
    ):
        """Request + unwrap: returns the result or raises ResponseError.

        With a retry policy and ``idempotent=True``, reconnects and
        retries after transport failures, and (by policy) after
        ``unavailable`` replies — raising
        :class:`~repro.errors.OverloadError` when those exhaust the
        attempts.  A ``deadline`` bounds the *whole* call: each attempt
        stamps the shrinking remainder onto the wire, backoff sleeps
        never cross it, and an expired budget raises the last transport
        error (or :class:`~repro.errors.DeadlineExceededError` when no
        attempt even ran).
        """
        policy = self.retry if idempotent else None
        if policy is None:
            if deadline is not None and deadline.expired:
                _CLIENT_DEADLINE_ABANDONED.inc()
                raise DeadlineExceededError(
                    f"deadline expired before calling {self.host}:{self.port}"
                )
            return unwrap_response(
                self.request(self._traced(payload), deadline=deadline)
            )
        last: Optional[ReproError] = None
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                delay = policy.delay_s(attempt - 1, self._rng)
                if deadline is not None:
                    remaining = deadline.remaining_s()
                    if remaining <= delay:
                        # Sleeping past the budget helps nobody; hand
                        # back what we know so the caller can degrade.
                        break
                _CLIENT_RETRIES.inc()
                time.sleep(delay)
            if deadline is not None and deadline.expired:
                break
            try:
                return unwrap_response(
                    self.request(self._traced(payload), deadline=deadline)
                )
            except ServeConnectionError as exc:
                self._teardown()
                _CLIENT_RECONNECTS.inc()
                last = exc
            except ResponseError as exc:
                if exc.error_type != "unavailable" or not policy.retry_unavailable:
                    raise
                last = OverloadError(str(exc))
        if deadline is not None and deadline.expired:
            _CLIENT_DEADLINE_ABANDONED.inc()
            if last is None:
                raise DeadlineExceededError(
                    f"deadline expired before calling {self.host}:{self.port}"
                )
        assert last is not None
        raise last

    # -- operations ----------------------------------------------------
    def ping(self) -> bool:
        """Liveness round trip."""
        return self.call({"op": "ping"}) == "pong"

    def models(self) -> List[Dict]:
        """Metadata of every model the server holds."""
        return self.call({"op": "models"})

    def stats(self) -> Dict:
        """Server telemetry snapshot (serve.* / build.* / faults.* metrics)."""
        return self.call({"op": "stats"})

    def healthz(self) -> Dict:
        """Liveness/saturation summary (queue depth, shed counters)."""
        return self.call({"op": "healthz"})

    def slowlog(self) -> Dict:
        """The server's slow-query log (knobs + sampled entries)."""
        return self.call({"op": "slowlog"})

    def evaluate(self, model: str, initial, final) -> float:
        """Capacitance (fF) of one transition of a served model."""
        result = self.call(
            {
                "op": "evaluate",
                "model": model,
                "initial": _bits(initial),
                "final": _bits(final),
            }
        )
        return float(result["capacitance_fF"])

    def evaluate_pairs(
        self, model: str, pairs: Sequence[Tuple[object, object]]
    ) -> List[float]:
        """Capacitances for a client-side batch of transitions."""
        result = self.call(
            {
                "op": "evaluate",
                "model": model,
                "pairs": [[_bits(i), _bits(f)] for i, f in pairs],
            }
        )
        return [float(v) for v in result["capacitances_fF"]]

    def shutdown(self) -> None:
        """Ask the server to stop gracefully (never retried)."""
        self.call({"op": "shutdown"}, idempotent=False)

    def close(self) -> None:
        """Close the connection."""
        self._teardown()

    def __enter__(self) -> "PowerQueryClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Concurrent load generation
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LoadReport:
    """Outcome of one :func:`generate_load` run."""

    clients: int
    requests: int
    errors: int
    seconds: float
    requests_per_sec: float
    latency_p50_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    retries: int = 0
    reconnects: int = 0
    #: Cluster loads only: requests that succeeded on a different shard
    #: after a transport failure on their first choice.
    failovers: int = 0
    #: Cluster loads only: ring snapshots re-fetched from the router.
    ring_refreshes: int = 0
    #: Trace id the whole run was stamped with (None when untraced).
    trace_id: Optional[str] = None

    def to_dict(self) -> Dict:
        return {
            "clients": self.clients,
            "requests": self.requests,
            "errors": self.errors,
            "seconds": self.seconds,
            "requests_per_sec": self.requests_per_sec,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_mean_ms": self.latency_mean_ms,
            "retries": self.retries,
            "reconnects": self.reconnects,
            "failovers": self.failovers,
            "ring_refreshes": self.ring_refreshes,
            "trace_id": self.trace_id,
        }


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


def _trace_root() -> Optional[TraceContext]:
    """Root trace context of one load-generation run.

    The caller's active context wins (the run joins their trace);
    otherwise a fresh root is opened when tracing is enabled in this
    process, so ``--trace`` runs are distributed-traced with no extra
    setup.  Untraced runs pay nothing: None disables all stamping.
    """
    context = current_trace_context()
    if context is not None:
        return context
    return new_trace_context() if get_tracer().enabled else None


async def _load_worker(
    host: str,
    port: int,
    model: str,
    transitions: Sequence[Tuple[str, str]],
    requests: int,
    offset: int,
    latencies: List[float],
    counters: Dict[str, int],
    retry: Optional[RetryPolicy],
    trace_root: Optional[TraceContext] = None,
) -> None:
    rng = random.Random(1000003 * offset + 17)
    tracer = get_tracer()
    reader = writer = None

    async def connect() -> None:
        nonlocal reader, writer
        if writer is None:
            reader, writer = await asyncio.open_connection(host, port)

    def drop() -> None:
        nonlocal reader, writer
        if writer is not None:
            writer.close()
        reader = writer = None

    async def roundtrip(wire: Dict) -> bytes:
        await connect()
        writer.write(protocol.encode(wire))
        await writer.drain()
        return await reader.readline()

    max_attempts = retry.max_attempts if retry is not None else 1
    try:
        for k in range(requests):
            initial, final = transitions[(offset + k) % len(transitions)]
            payload = {
                "id": k,
                "op": "evaluate",
                "model": model,
                "initial": initial,
                "final": final,
            }
            # One child context per request; each attempt becomes its
            # own hop below (same trace_id, fresh span_id) so retries
            # are individually visible in the merged timeline.  When no
            # spans are recorded locally (propagation-only mode) the
            # intermediate context is skipped: only the wire header is
            # minted, directly off the root.
            request_ctx = (
                trace_root.child()
                if trace_root is not None and tracer.record
                else None
            )
            started = time.perf_counter()
            answered = False
            for attempt in range(1, max_attempts + 1):
                if attempt > 1:
                    counters["retries"] += 1
                    await asyncio.sleep(retry.delay_s(attempt - 1, rng))
                try:
                    if request_ctx is None:
                        if trace_root is None:
                            line = await roundtrip(payload)
                        else:
                            # Propagation only: fresh span id per
                            # attempt on the wire, no local span.  The
                            # payload is per-request, so overwriting the
                            # header in place is attempt-safe.
                            payload["traceparent"] = (
                                trace_root.child_traceparent()
                            )
                            line = await roundtrip(payload)
                    else:
                        hop = request_ctx.child()
                        with use_trace_context(hop):
                            with tracer.span(
                                "serve.client.request",
                                model=model,
                                attempt=attempt,
                            ):
                                line = await roundtrip(
                                    dict(
                                        payload,
                                        traceparent=hop.to_traceparent(),
                                    )
                                )
                except (OSError, asyncio.IncompleteReadError):
                    drop()
                    counters["reconnects"] += 1
                    continue
                if not line:  # mid-request reset: reconnect and retry
                    drop()
                    counters["reconnects"] += 1
                    continue
                reply = json.loads(line.decode("utf-8"))
                if reply.get("ok"):
                    answered = True
                    break
                error_type = (reply.get("error") or {}).get("type")
                if (
                    retry is not None
                    and retry.retry_unavailable
                    and error_type == "unavailable"
                ):
                    continue  # shed: back off and retry on the same socket
                break  # other structured errors are not retryable
            latencies.append(time.perf_counter() - started)
            if not answered:
                counters["errors"] += 1
    finally:
        drop()


def generate_load(
    host: str,
    port: int,
    model: str,
    transitions: Sequence[Tuple[object, object]],
    clients: int = 64,
    requests_per_client: int = 50,
    retry: Optional[RetryPolicy] = RetryPolicy(),
) -> LoadReport:
    """Hammer a server with N concurrent single-transition query streams.

    Each of ``clients`` connections issues ``requests_per_client``
    ``evaluate`` requests back to back (one in flight per connection, so
    concurrency across connections is what feeds the server's
    micro-batcher) and every round trip is timed individually.  With the
    default ``retry`` policy, connection resets and ``unavailable``
    load-shed replies are retried with backoff (counted in the report)
    instead of failing the request.
    """
    if not transitions:
        raise ReproError("generate_load needs at least one transition")
    normalized = [(_bits(i), _bits(f)) for i, f in transitions]
    latencies: List[float] = []
    counters = {"errors": 0, "retries": 0, "reconnects": 0}
    trace_root = _trace_root()

    async def _run() -> float:
        started = time.perf_counter()
        await asyncio.gather(
            *(
                _load_worker(
                    host,
                    port,
                    model,
                    normalized,
                    requests_per_client,
                    worker,
                    latencies,
                    counters,
                    retry,
                    trace_root,
                )
                for worker in range(clients)
            )
        )
        return time.perf_counter() - started

    elapsed = asyncio.run(_run())
    total = clients * requests_per_client
    ordered = sorted(latencies)
    return LoadReport(
        clients=clients,
        requests=total,
        errors=counters["errors"],
        seconds=elapsed,
        requests_per_sec=total / elapsed if elapsed > 0 else 0.0,
        latency_p50_ms=1000.0 * _percentile(ordered, 0.50),
        latency_p99_ms=1000.0 * _percentile(ordered, 0.99),
        latency_mean_ms=(
            1000.0 * sum(ordered) / len(ordered) if ordered else 0.0
        ),
        retries=counters["retries"],
        reconnects=counters["reconnects"],
        trace_id=trace_root.trace_id if trace_root is not None else None,
    )
