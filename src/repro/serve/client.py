"""Clients for the power-query service.

- :class:`PowerQueryClient` — a small synchronous JSON-lines client over a
  plain socket: one in-flight request at a time, blocking semantics,
  usable from tests, scripts and the ``repro query`` CLI without any
  asyncio plumbing.
- :func:`generate_load` — a concurrent load generator: N asyncio client
  connections each issue a stream of single-transition ``evaluate``
  requests and time every round trip, producing the requests/sec and
  latency-percentile numbers the serving benchmark reports.
"""

from __future__ import annotations

import asyncio
import socket
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.serve import protocol
from repro.serve.protocol import ResponseError, unwrap_response


def _bits(pattern) -> str:
    """Accept a 0/1 string or an int/bool sequence; return the bit string."""
    if isinstance(pattern, str):
        return pattern
    return "".join("1" if int(b) else "0" for b in pattern)


class PowerQueryClient:
    """Blocking JSON-lines client for one server connection."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._stream = self._sock.makefile("rwb")
        self._next_id = 0

    # -- plumbing ------------------------------------------------------
    def request(self, payload: Dict) -> Dict:
        """Send one request object and block for its response envelope."""
        if "id" not in payload:
            self._next_id += 1
            payload = dict(payload, id=self._next_id)
        self._stream.write(protocol.encode(payload))
        self._stream.flush()
        line = self._stream.readline()
        if not line:
            raise ReproError("server closed the connection")
        import json

        return json.loads(line.decode("utf-8"))

    def call(self, payload: Dict):
        """Request + unwrap: returns the result or raises ResponseError."""
        return unwrap_response(self.request(payload))

    # -- operations ----------------------------------------------------
    def ping(self) -> bool:
        """Liveness round trip."""
        return self.call({"op": "ping"}) == "pong"

    def models(self) -> List[Dict]:
        """Metadata of every model the server holds."""
        return self.call({"op": "models"})

    def stats(self) -> Dict:
        """Server telemetry snapshot (serve.* / compiled.eval* metrics)."""
        return self.call({"op": "stats"})

    def evaluate(self, model: str, initial, final) -> float:
        """Capacitance (fF) of one transition of a served model."""
        result = self.call(
            {
                "op": "evaluate",
                "model": model,
                "initial": _bits(initial),
                "final": _bits(final),
            }
        )
        return float(result["capacitance_fF"])

    def evaluate_pairs(
        self, model: str, pairs: Sequence[Tuple[object, object]]
    ) -> List[float]:
        """Capacitances for a client-side batch of transitions."""
        result = self.call(
            {
                "op": "evaluate",
                "model": model,
                "pairs": [[_bits(i), _bits(f)] for i, f in pairs],
            }
        )
        return [float(v) for v in result["capacitances_fF"]]

    def shutdown(self) -> None:
        """Ask the server to stop gracefully."""
        self.call({"op": "shutdown"})

    def close(self) -> None:
        """Close the connection."""
        try:
            self._stream.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "PowerQueryClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Concurrent load generation
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LoadReport:
    """Outcome of one :func:`generate_load` run."""

    clients: int
    requests: int
    errors: int
    seconds: float
    requests_per_sec: float
    latency_p50_ms: float
    latency_p99_ms: float
    latency_mean_ms: float

    def to_dict(self) -> Dict:
        return {
            "clients": self.clients,
            "requests": self.requests,
            "errors": self.errors,
            "seconds": self.seconds,
            "requests_per_sec": self.requests_per_sec,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_mean_ms": self.latency_mean_ms,
        }


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


async def _load_worker(
    host: str,
    port: int,
    model: str,
    transitions: Sequence[Tuple[str, str]],
    requests: int,
    offset: int,
    latencies: List[float],
    errors: List[int],
) -> None:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for k in range(requests):
            initial, final = transitions[(offset + k) % len(transitions)]
            payload = {
                "id": k,
                "op": "evaluate",
                "model": model,
                "initial": initial,
                "final": final,
            }
            started = time.perf_counter()
            writer.write(protocol.encode(payload))
            await writer.drain()
            line = await reader.readline()
            latencies.append(time.perf_counter() - started)
            if not line:
                errors[0] += requests - k
                return
            import json

            if not json.loads(line.decode("utf-8")).get("ok"):
                errors[0] += 1
    finally:
        writer.close()


def generate_load(
    host: str,
    port: int,
    model: str,
    transitions: Sequence[Tuple[object, object]],
    clients: int = 64,
    requests_per_client: int = 50,
) -> LoadReport:
    """Hammer a server with N concurrent single-transition query streams.

    Each of ``clients`` connections issues ``requests_per_client``
    ``evaluate`` requests back to back (one in flight per connection, so
    concurrency across connections is what feeds the server's
    micro-batcher) and every round trip is timed individually.
    """
    if not transitions:
        raise ReproError("generate_load needs at least one transition")
    normalized = [(_bits(i), _bits(f)) for i, f in transitions]
    latencies: List[float] = []
    errors = [0]

    async def _run() -> float:
        started = time.perf_counter()
        await asyncio.gather(
            *(
                _load_worker(
                    host,
                    port,
                    model,
                    normalized,
                    requests_per_client,
                    worker,
                    latencies,
                    errors,
                )
                for worker in range(clients)
            )
        )
        return time.perf_counter() - started

    elapsed = asyncio.run(_run())
    total = clients * requests_per_client
    ordered = sorted(latencies)
    return LoadReport(
        clients=clients,
        requests=total,
        errors=errors[0],
        seconds=elapsed,
        requests_per_sec=total / elapsed if elapsed > 0 else 0.0,
        latency_p50_ms=1000.0 * _percentile(ordered, 0.50),
        latency_p99_ms=1000.0 * _percentile(ordered, 0.99),
        latency_mean_ms=(
            1000.0 * sum(ordered) / len(ordered) if ordered else 0.0
        ),
    )
