"""Wire protocol of the power-query service: JSON lines over TCP.

Each request and each response is one JSON object on one ``\\n``-terminated
line (UTF-8).  Requests carry a caller-chosen ``id`` that is echoed back,
so a client may pipeline many requests on one connection and match
responses out of order (micro-batching on the server reorders completions
by design).

Request shapes
--------------
``{"id": .., "op": "evaluate", "model": NAME, "initial": BITS, "final": BITS}``
    One transition; ``BITS`` is an n-character 0/1 string in the model's
    external input order.
``{"id": .., "op": "evaluate", "model": NAME, "pairs": [[BITS, BITS], ...]}``
    A client-side batch of transitions in one request.
``{"id": .., "op": "models"}``
    Names and metadata of the models this server holds.
``{"id": .., "op": "ping"}`` / ``{"id": .., "op": "stats"}`` /
``{"id": .., "op": "slowlog"}`` / ``{"id": .., "op": "shutdown"}``
    Liveness, telemetry snapshot, slow-query log, graceful stop.

Any request may additionally carry a ``deadline_ms`` field — the
caller's **remaining** end-to-end budget in milliseconds at send time
(relative, not absolute: wall clocks differ across machines, monotonic
clocks differ across processes, but a duration survives the hop).  Each
server rebases it onto its own monotonic clock on arrival
(:class:`Deadline`), caps its own waits (long polls, batch parking) at
the remainder, and answers an already-expired request with a structured
``timeout`` instead of doing work nobody is waiting for.  Clients
re-stamp the *current* remainder on every retry hop, so one budget
covers the whole client→router→shard→queue chain, retries and breaker
waits included.  Absent field = no deadline, exactly the old behaviour.

Any request may additionally carry a ``traceparent`` field — a
W3C-traceparent-shaped string (``00-<trace_id>-<span_id>-01``, see
:class:`repro.obs.trace.TraceContext`) naming the caller's hop of a
distributed trace.  Servers that recognise it stamp their spans with the
same ``trace_id`` so ``repro trace-merge`` can assemble one cross-process
timeline; servers (and versions) that don't simply ignore the field.  A
malformed ``traceparent`` is ignored, never an error: telemetry must not
fail a request.

Responses are ``{"id": .., "ok": true, "result": ...}`` on success and
``{"id": .., "ok": false, "error": {"type": T, "message": M}}`` on
failure, with ``T`` one of :data:`ERROR_TYPES`.  A line the server cannot
even parse is answered with ``id = null`` and a ``protocol`` error.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ReproError

#: Structured error categories a response may carry.
ERROR_TYPES = (
    "protocol",       # unparseable line / not a JSON object / line too long
    "bad_request",    # parseable but malformed request (bits, fields, op args)
    "unknown_model",  # model name the server does not hold
    "not_found",      # object / job key the server does not hold
    "timeout",        # request expired before its batch was evaluated
    "unavailable",    # server is shutting down
    "internal",       # unexpected evaluation failure
)

#: One request line may not exceed this many bytes (DoS guard; generous
#: enough for thousands of transitions of a wide macro in one batch).
MAX_LINE_BYTES = 4 * 1024 * 1024


class ProtocolError(ReproError):
    """A request violated the wire protocol; carries the error type."""

    def __init__(self, error_type: str, message: str):
        assert error_type in ERROR_TYPES
        self.error_type = error_type
        super().__init__(message)


def encode(obj: Dict) -> bytes:
    """Serialise one protocol object to its wire line."""
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode("utf-8")


def decode_request(line: bytes) -> Dict:
    """Parse one request line; raises :class:`ProtocolError` when invalid."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            "protocol", f"request line exceeds {MAX_LINE_BYTES} bytes"
        )
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError("protocol", f"unparseable request: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("protocol", "request must be a JSON object")
    if "op" not in obj or not isinstance(obj["op"], str):
        raise ProtocolError("bad_request", "request needs a string 'op' field")
    return obj


def ok_response(request_id, result) -> Dict:
    """Build a success response envelope."""
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id, error_type: str, message: str) -> Dict:
    """Build a structured error response envelope."""
    if error_type not in ERROR_TYPES:
        error_type = "internal"
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": error_type, "message": message},
    }


class Deadline:
    """A monotonic end-to-end budget that travels on the envelope.

    Created once at the edge (``Deadline.after(seconds)``) and re-based
    on each server's own monotonic clock as it hops
    (``Deadline.from_request``).  All arithmetic is
    :func:`time.monotonic` — wall-clock jumps (NTP steps, suspend)
    neither hang nor prematurely expire a budget.
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float):
        self.expires_at = expires_at

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now on this process's clock."""
        return cls(time.monotonic() + max(0.0, float(seconds)))

    @classmethod
    def from_request(cls, request: Dict) -> "Optional[Deadline]":
        """Rebase a request's ``deadline_ms`` remainder locally.

        Returns None when the field is absent.  A malformed value is
        ignored (None), never an error — like ``traceparent``, the
        envelope extras must not fail a request.
        """
        raw = request.get("deadline_ms")
        if raw is None:
            return None
        try:
            remaining = float(raw) / 1000.0
        except (TypeError, ValueError):
            return None
        return cls(time.monotonic() + max(0.0, remaining))

    def remaining_s(self) -> float:
        """Seconds left (clamped at 0.0)."""
        return max(0.0, self.expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def stamp(self, payload: Dict) -> Dict:
        """A copy of ``payload`` carrying the current remainder."""
        return dict(payload, deadline_ms=round(self.remaining_s() * 1000.0, 3))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining_s():.3f}s)"


def _parse_bits(bits, width: int, field: str) -> List[bool]:
    if not isinstance(bits, str) or len(bits) != width or set(bits) - {"0", "1"}:
        raise ProtocolError(
            "bad_request",
            f"{field!r} must be a {width}-character 0/1 string",
        )
    return [ch == "1" for ch in bits]


def parse_transitions(
    request: Dict, num_inputs: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Extract the ``(P, n)`` initial/final matrices of an evaluate request.

    Accepts either the single-transition ``initial``/``final`` fields or
    a ``pairs`` list; exactly one spelling must be present.
    """
    has_single = "initial" in request or "final" in request
    has_pairs = "pairs" in request
    if has_single == has_pairs:
        raise ProtocolError(
            "bad_request",
            "evaluate needs either 'initial'+'final' or 'pairs' (not both)",
        )
    if has_single:
        initial = [_parse_bits(request.get("initial"), num_inputs, "initial")]
        final = [_parse_bits(request.get("final"), num_inputs, "final")]
    else:
        pairs = request["pairs"]
        if (
            not isinstance(pairs, list)
            or not pairs
            or not all(isinstance(p, (list, tuple)) and len(p) == 2 for p in pairs)
        ):
            raise ProtocolError(
                "bad_request", "'pairs' must be a non-empty list of [initial, final]"
            )
        initial = [_parse_bits(p[0], num_inputs, "pairs[].initial") for p in pairs]
        final = [_parse_bits(p[1], num_inputs, "pairs[].final") for p in pairs]
    return np.array(initial, dtype=bool), np.array(final, dtype=bool)


def model_summary(name: str, model) -> Dict:
    """Metadata one ``models`` response row carries for a served model."""
    return {
        "name": name,
        "macro": model.macro_name,
        "inputs": model.num_inputs,
        "input_names": list(model.input_names),
        "strategy": model.strategy,
        "nodes": model.size,
        "source_netlist_sha256": model.source_hash,
    }


def require_field(request: Dict, field: str, kind=str):
    """Fetch a typed field from a request or raise ``bad_request``."""
    value = request.get(field)
    if not isinstance(value, kind):
        raise ProtocolError(
            "bad_request", f"request needs a {kind.__name__} {field!r} field"
        )
    return value


def read_frames(buffer: bytes) -> Tuple[List[bytes], bytes]:
    """Split a byte buffer into complete lines plus the unread remainder.

    Helper for sync clients that read raw chunks; the server side uses
    ``StreamReader.readline`` directly.
    """
    frames: List[bytes] = []
    while True:
        newline = buffer.find(b"\n")
        if newline < 0:
            return frames, buffer
        frames.append(buffer[:newline])
        buffer = buffer[newline + 1 :]


class ResponseError(ReproError):
    """Raised by clients when a response carries a structured error."""

    def __init__(self, error_type: str, message: str, request_id=None):
        self.error_type = error_type
        self.request_id = request_id
        super().__init__(f"{error_type}: {message}")


def unwrap_response(response: Dict):
    """Return a response's result, raising :class:`ResponseError` on error."""
    if response.get("ok"):
        return response.get("result")
    error = response.get("error") or {}
    raise ResponseError(
        error.get("type", "internal"),
        error.get("message", "malformed error response"),
        request_id=response.get("id"),
    )
