"""Shared circuit breakers: stop hammering endpoints that are down.

When a control-plane process dies (queue server SIGKILLed, object store
restarting), every client that keeps dialing it pays a connect timeout
per call — and the degrade paths (local builds, shard failover) only
feel fast if the *decision* to degrade is fast.  A
:class:`CircuitBreaker` makes it one memory read:

- **closed** — normal traffic; consecutive transport failures are
  counted, and crossing ``failure_threshold`` trips the breaker open.
- **open** — calls are short-circuited immediately (the caller raises
  :class:`~repro.errors.CircuitOpenError` without touching the socket)
  until ``reset_timeout_s`` has passed.
- **half-open** — one probe call is admitted; success closes the
  breaker, failure re-opens it for another timeout.

Breakers are **shared per endpoint** through :func:`breaker_for`: the
store backend, the queue client and the warmer all consult the same
object for one ``host:port``, so the first client to notice an outage
spares all the others the timeout.  All clocks are monotonic; all
transitions are counted under ``serve.breaker.*`` and the number of
currently-open circuits is exported as a ``serve.breaker.open_count``
gauge for the router's Prometheus page and ``repro top``.
"""

from __future__ import annotations

import threading
import time
from typing import Dict

from repro.obs.metrics import get_metrics

_MET = get_metrics()
_OPENED = _MET.counter("serve.breaker.opened")
_CLOSED = _MET.counter("serve.breaker.closed")
_SHORT_CIRCUITS = _MET.counter("serve.breaker.short_circuits")
_PROBES = _MET.counter("serve.breaker.probes")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Closed/open/half-open failure gate for one endpoint.

    Thread-safe: a process's server threads, worker heartbeat threads
    and warmer all consult one instance concurrently.
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 5,
        reset_timeout_s: float = 1.0,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s <= 0:
            raise ValueError(
                f"reset_timeout_s must be > 0, got {reset_timeout_s}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state (transitions open -> half-open lazily)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        """Lock held: open -> half-open once the reset timeout passed."""
        if (
            self._state == OPEN
            and time.monotonic() - self._opened_at >= self.reset_timeout_s
        ):
            self._state = HALF_OPEN
            self._probe_in_flight = False

    def allow(self) -> bool:
        """May a call proceed right now?

        Closed: always.  Open: no (counted as a short circuit).
        Half-open: exactly one probe at a time; everyone else is
        short-circuited until the probe reports.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                _PROBES.inc()
                return True
        _SHORT_CIRCUITS.inc()
        return False

    def record_success(self) -> None:
        """A call completed over the wire (any structured reply counts)."""
        with self._lock:
            if self._state != CLOSED:
                self._state = CLOSED
                _CLOSED.inc()
                _update_open_gauge()
            self._failures = 0
            self._probe_in_flight = False

    def record_failure(self) -> None:
        """A call failed at the transport (reset, refused, timeout)."""
        with self._lock:
            self._probe_in_flight = False
            if self._state == HALF_OPEN:
                # The probe failed: straight back to open, fresh timer.
                self._state = OPEN
                self._opened_at = time.monotonic()
                _OPENED.inc()
                _update_open_gauge()
                return
            self._failures += 1
            if self._state == CLOSED and self._failures >= self.failure_threshold:
                self._state = OPEN
                self._opened_at = time.monotonic()
                _OPENED.inc()
                _update_open_gauge()

    def reset(self) -> None:
        """Force-close (tests and explicit operator action)."""
        with self._lock:
            self._state = CLOSED
            self._failures = 0
            self._probe_in_flight = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker({self.name!r}, state={self.state!r})"


# ---------------------------------------------------------------------------
# Per-endpoint registry
# ---------------------------------------------------------------------------
_REGISTRY: Dict[str, CircuitBreaker] = {}
_REGISTRY_LOCK = threading.Lock()


def breaker_for(
    host: str,
    port: int,
    failure_threshold: int = 5,
    reset_timeout_s: float = 1.0,
) -> CircuitBreaker:
    """The process-wide shared breaker for one ``host:port`` endpoint.

    Tuning parameters apply on first creation only — every later caller
    shares the breaker exactly as configured by the first.
    """
    name = f"{host}:{port}"
    with _REGISTRY_LOCK:
        breaker = _REGISTRY.get(name)
        if breaker is None:
            breaker = _REGISTRY[name] = CircuitBreaker(
                name,
                failure_threshold=failure_threshold,
                reset_timeout_s=reset_timeout_s,
            )
        return breaker


def breaker_states() -> Dict[str, str]:
    """Endpoint -> state for every breaker this process has touched."""
    with _REGISTRY_LOCK:
        breakers = list(_REGISTRY.values())
    return {breaker.name: breaker.state for breaker in breakers}


def reset_breakers() -> None:
    """Drop every registered breaker (test isolation).

    Ephemeral test ports get recycled by the kernel; a breaker opened
    for a dead port must not poison an unrelated later server there.
    """
    with _REGISTRY_LOCK:
        _REGISTRY.clear()
    _update_open_gauge()


def _update_open_gauge() -> None:
    """Refresh the open-circuit count gauge after a transition."""
    with _REGISTRY_LOCK:
        open_count = sum(
            1 for breaker in _REGISTRY.values() if breaker._state == OPEN
        )
    _MET.gauge("serve.breaker.open_count", kind="last").set(open_count)


__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "breaker_for",
    "breaker_states",
    "reset_breakers",
]
