"""Structural Verilog writer and reader (gate-level subset).

An interoperability extension beyond the paper: netlists can be exported
for inspection in standard EDA tools and re-imported.  The supported
subset is exactly what the writer emits — Verilog gate primitives
(``and``, ``or``, ``nand``, ``nor``, ``xor``, ``xnor``, ``not``, ``buf``)
plus conditional ``assign`` for multiplexers and constant assigns.
"""

from __future__ import annotations

import io
import re
from typing import Dict, List, TextIO

from repro.errors import ParseError
from repro.netlist.gates import GateOp
from repro.netlist.library import DEFAULT_OUTPUT_LOAD_FF, Library, TEST_LIBRARY
from repro.netlist.netlist import Netlist

_PRIMITIVE_BY_OP = {
    GateOp.AND: "and",
    GateOp.OR: "or",
    GateOp.NAND: "nand",
    GateOp.NOR: "nor",
    GateOp.XOR: "xor",
    GateOp.XNOR: "xnor",
    GateOp.INV: "not",
    GateOp.BUF: "buf",
}
_OP_BY_PRIMITIVE = {v: k for k, v in _PRIMITIVE_BY_OP.items()}

_IDENT = r"[A-Za-z_][A-Za-z0-9_$]*"


def _sanitize(net: str) -> str:
    """Make a net name a legal Verilog identifier (deterministic)."""
    clean = re.sub(r"[^A-Za-z0-9_$]", "_", net)
    if not re.match(r"[A-Za-z_]", clean):
        clean = "n_" + clean
    return clean


def write_verilog(netlist: Netlist, stream: TextIO | None = None) -> str:
    """Serialise a netlist as structural Verilog; returns the text."""
    out = stream if stream is not None else io.StringIO()
    names: Dict[str, str] = {}
    used: set[str] = set()
    all_nets = (
        list(netlist.inputs)
        + [g.output for g in netlist.gates]
        + list(netlist.outputs)
    )
    for net in all_nets:
        if net in names:
            continue
        candidate = _sanitize(net)
        while candidate in used:
            candidate += "_"
        names[net] = candidate
        used.add(candidate)

    module = _sanitize(netlist.name)
    ports = [names[n] for n in netlist.inputs] + [names[n] for n in netlist.outputs]
    out.write(f"module {module} ({', '.join(ports)});\n")
    for net in netlist.inputs:
        out.write(f"  input {names[net]};\n")
    for net in netlist.outputs:
        out.write(f"  output {names[net]};\n")
    internal = [
        g.output
        for g in netlist.gates
        if g.output not in netlist.outputs
    ]
    for net in internal:
        out.write(f"  wire {names[net]};\n")
    for gate in netlist.topological_order():
        op = gate.cell.op
        target = names[gate.output]
        if op is GateOp.CONST0:
            out.write(f"  assign {target} = 1'b0;\n")
        elif op is GateOp.CONST1:
            out.write(f"  assign {target} = 1'b1;\n")
        elif op is GateOp.MUX:
            select, when0, when1 = (names[n] for n in gate.inputs)
            out.write(
                f"  assign {target} = {select} ? {when1} : {when0};\n"
            )
        else:
            primitive = _PRIMITIVE_BY_OP[op]
            operands = ", ".join(names[n] for n in gate.inputs)
            out.write(f"  {primitive} {gate.name} ({target}, {operands});\n")
    out.write("endmodule\n")
    return out.getvalue() if isinstance(out, io.StringIO) else ""


def save_verilog(netlist: Netlist, path: str) -> None:
    """Write a netlist to a Verilog file."""
    with open(path, "w", encoding="utf-8") as handle:
        write_verilog(netlist, handle)


def parse_verilog(
    text: str,
    library: Library = TEST_LIBRARY,
    output_load_fF: float = DEFAULT_OUTPUT_LOAD_FF,
) -> Netlist:
    """Parse the structural subset emitted by :func:`write_verilog`."""
    # Strip comments, join into statements on ';'.
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)

    module_match = re.search(
        rf"module\s+({_IDENT})\s*\((.*?)\)\s*;", text, flags=re.DOTALL
    )
    if not module_match:
        raise ParseError("no module declaration found")
    name = module_match.group(1)
    body_start = module_match.end()
    end_match = re.search(r"endmodule", text)
    if not end_match:
        raise ParseError("missing endmodule")
    body = text[body_start : end_match.start()]

    netlist = Netlist(name, library, output_load_fF)
    outputs: List[str] = []
    statements = [s.strip() for s in body.split(";") if s.strip()]
    for statement in statements:
        decl = re.match(rf"(input|output|wire)\s+(.+)$", statement, flags=re.DOTALL)
        if decl:
            kind, nets_text = decl.groups()
            nets = [n.strip() for n in nets_text.split(",") if n.strip()]
            for net in nets:
                if not re.fullmatch(_IDENT, net):
                    raise ParseError(f"bad net name {net!r} in {kind} declaration")
                if kind == "input":
                    netlist.add_input(net)
                elif kind == "output":
                    outputs.append(net)
            continue
        assign = re.match(
            rf"assign\s+({_IDENT})\s*=\s*(.+)$", statement, flags=re.DOTALL
        )
        if assign:
            target, expression = assign.group(1), assign.group(2).strip()
            _parse_assign(netlist, target, expression)
            continue
        instance = re.match(
            rf"({_IDENT})\s+({_IDENT})\s*\(\s*({_IDENT})\s*,\s*(.+)\)$",
            statement,
            flags=re.DOTALL,
        )
        if instance:
            primitive, gate_name, target, operand_text = instance.groups()
            op = _OP_BY_PRIMITIVE.get(primitive)
            if op is None:
                raise ParseError(f"unsupported primitive {primitive!r}")
            operands = [o.strip() for o in operand_text.split(",") if o.strip()]
            cell = library.cell_for_op(op, len(operands))
            netlist.add_gate(cell, operands, target, name=gate_name)
            continue
        raise ParseError(f"cannot parse statement {statement!r}")
    for net in outputs:
        netlist.add_output(net)
    netlist.topological_order()
    return netlist


def _assign_gate_name(netlist: Netlist, target: str) -> str:
    """Deterministic, collision-free instance name for an assign gate."""
    name = f"assign_{target}"
    while netlist.has_gate_name(name):
        name += "_"
    return name


def _parse_assign(netlist: Netlist, target: str, expression: str) -> None:
    """Handle constant and mux assigns."""
    if expression in ("1'b0", "1'b1"):
        op = GateOp.CONST1 if expression.endswith("1") else GateOp.CONST0
        cell = netlist.library.cell_for_op(op, 0)
        netlist.add_gate(cell, [], target, name=_assign_gate_name(netlist, target))
        return
    mux = re.match(
        rf"({_IDENT})\s*\?\s*({_IDENT})\s*:\s*({_IDENT})$", expression
    )
    if mux:
        select, when1, when0 = mux.groups()
        cell = netlist.library.cell_for_op(GateOp.MUX, 3)
        netlist.add_gate(
            cell,
            [select, when0, when1],
            target,
            name=_assign_gate_name(netlist, target),
        )
        return
    raise ParseError(f"cannot parse assign expression {expression!r}")


def read_verilog(
    path: str,
    library: Library = TEST_LIBRARY,
    output_load_fF: float = DEFAULT_OUTPUT_LOAD_FF,
) -> Netlist:
    """Read and parse a structural Verilog file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_verilog(handle.read(), library, output_load_fF)
