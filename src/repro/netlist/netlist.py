"""Gate-level netlist: the paper's *golden model*.

A :class:`Netlist` is a combinational network of library cells connected
by named nets.  It is the abstraction level at which the paper defines
structural power: zero propagation delays, back-annotated capacitances,
dynamic charging of rising nodes as the only modeled phenomenon.

The load capacitance of a gate ``g_j`` (the ``C_j`` of Eq. 2-4) is derived
exactly as in the paper's experimental setup: the sum of the input-pin
capacitances of its fanout gates, plus a fixed pad/register load if its
output net is a primary output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import NetlistError
from repro.netlist.gates import GateOp, eval_python
from repro.netlist.library import (
    DEFAULT_OUTPUT_LOAD_FF,
    Cell,
    Library,
    TEST_LIBRARY,
)


@dataclass(frozen=True)
class Gate:
    """One cell instance: ``output = cell.op(inputs)``."""

    name: str
    cell: Cell
    inputs: Tuple[str, ...]
    output: str


@dataclass(frozen=True)
class NetlistStats:
    """Summary statistics of a netlist (the ``n`` / ``N`` of Table 1)."""

    name: str
    num_inputs: int
    num_outputs: int
    num_gates: int
    depth: int
    total_load_capacitance_fF: float


class Netlist:
    """A combinational gate-level circuit.

    Build incrementally with :meth:`add_input`, :meth:`add_gate` and
    :meth:`add_output`; gates may reference nets defined later, cycles are
    rejected when a topological order is first requested.
    """

    def __init__(
        self,
        name: str,
        library: Library = TEST_LIBRARY,
        output_load_fF: float = DEFAULT_OUTPUT_LOAD_FF,
    ):
        self.name = name
        self.library = library
        self.output_load_fF = output_load_fF
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.gates: List[Gate] = []
        self._driver: Dict[str, Gate] = {}
        self._input_set: set[str] = set()
        self._gate_names: set[str] = set()
        self._topo_cache: Optional[List[Gate]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        """Declare a primary input net; returns its name."""
        if name in self._input_set:
            raise NetlistError(f"duplicate primary input {name!r}")
        if name in self._driver:
            raise NetlistError(f"net {name!r} is already driven by a gate")
        self.inputs.append(name)
        self._input_set.add(name)
        self._topo_cache = None
        return name

    def add_gate(
        self,
        cell: str | Cell,
        inputs: Sequence[str],
        output: str,
        name: str | None = None,
    ) -> str:
        """Instantiate a cell; returns the output net name.

        ``cell`` may be a cell name looked up in the netlist's library or
        a :class:`Cell` object directly.
        """
        resolved = self.library[cell] if isinstance(cell, str) else cell
        if len(inputs) != resolved.num_inputs:
            raise NetlistError(
                f"cell {resolved.name} expects {resolved.num_inputs} inputs, "
                f"got {len(inputs)}"
            )
        if output in self._driver:
            raise NetlistError(f"net {output!r} already has a driver")
        if output in self._input_set:
            raise NetlistError(f"net {output!r} is a primary input")
        if name is not None:
            gate_name = name
            if gate_name in self._gate_names:
                raise NetlistError(f"duplicate gate name {gate_name!r}")
        else:
            # Auto names must dodge explicitly supplied ones.
            counter = len(self.gates)
            gate_name = f"g{counter}"
            while gate_name in self._gate_names:
                counter += 1
                gate_name = f"g{counter}"
        gate = Gate(gate_name, resolved, tuple(inputs), output)
        self.gates.append(gate)
        self._gate_names.add(gate_name)
        self._driver[output] = gate
        self._topo_cache = None
        return output

    def add_output(self, net: str) -> None:
        """Mark a net as a primary output."""
        if net in self.outputs:
            raise NetlistError(f"net {net!r} is already a primary output")
        self.outputs.append(net)
        self._topo_cache = None

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def num_inputs(self) -> int:
        """Primary-input count (the ``n`` of Table 1)."""
        return len(self.inputs)

    @property
    def num_gates(self) -> int:
        """Gate count (the ``N`` of Table 1)."""
        return len(self.gates)

    def driver(self, net: str) -> Optional[Gate]:
        """Gate driving ``net``, or None for primary inputs."""
        return self._driver.get(net)

    def is_primary_input(self, net: str) -> bool:
        """True if ``net`` is a declared primary input."""
        return net in self._input_set

    def has_gate_name(self, name: str) -> bool:
        """True if a gate with this instance name exists."""
        return name in self._gate_names

    def fanout_pins(self, net: str) -> List[Tuple[Gate, int]]:
        """All (gate, pin index) pairs where ``net`` is an input."""
        result = []
        for gate in self.gates:
            for pin, source in enumerate(gate.inputs):
                if source == net:
                    result.append((gate, pin))
        return result

    def fanin_map(self) -> Dict[str, Tuple[str, ...]]:
        """Net name -> names it directly depends on (for ordering heuristics)."""
        return {gate.output: gate.inputs for gate in self.gates}

    def topological_order(self) -> List[Gate]:
        """Gates ordered so every gate follows its fanin drivers.

        Raises :class:`NetlistError` on combinational cycles or undriven
        internal nets.  The result is cached until the netlist mutates.
        """
        if self._topo_cache is not None:
            return self._topo_cache
        remaining_deps: Dict[str, int] = {}
        dependents: Dict[str, List[Gate]] = {}
        for gate in self.gates:
            internal = 0
            for net in set(gate.inputs):
                if net in self._input_set:
                    continue
                if net not in self._driver:
                    raise NetlistError(
                        f"gate {gate.name}: input net {net!r} has no driver "
                        "and is not a primary input"
                    )
                internal += 1
                dependents.setdefault(net, []).append(gate)
            remaining_deps[gate.name] = internal
        ready = [g for g in self.gates if remaining_deps[g.name] == 0]
        order: List[Gate] = []
        cursor = 0
        while cursor < len(ready):
            gate = ready[cursor]
            cursor += 1
            order.append(gate)
            for dependent in dependents.get(gate.output, ()):  # one driver per net
                remaining_deps[dependent.name] -= 1
                if remaining_deps[dependent.name] == 0:
                    ready.append(dependent)
        if len(order) != len(self.gates):
            stuck = [g.name for g in self.gates if remaining_deps[g.name] > 0]
            raise NetlistError(f"combinational cycle through gates {stuck[:5]}")
        self._topo_cache = order
        return order

    def depth(self) -> int:
        """Longest path length in gates from any input to any output."""
        level: Dict[str, int] = {net: 0 for net in self.inputs}
        longest = 0
        for gate in self.topological_order():
            gate_level = 1 + max(
                (level.get(net, 0) for net in gate.inputs), default=0
            )
            level[gate.output] = gate_level
            longest = max(longest, gate_level)
        return longest

    # ------------------------------------------------------------------
    # Capacitance back-annotation
    # ------------------------------------------------------------------
    def load_capacitances(self) -> Dict[str, float]:
        """The ``C_j`` of Eq. 2: load per gate name, in fF.

        Each gate's load is the sum of its fanout pins' input capacitances;
        primary-output nets additionally carry ``output_load_fF``.
        """
        loads = {gate.name: 0.0 for gate in self.gates}
        for gate in self.gates:
            for pin, net in enumerate(gate.inputs):
                driving = self._driver.get(net)
                if driving is not None:
                    loads[driving.name] += gate.cell.pin_capacitance(pin)
        output_counts: Dict[str, int] = {}
        for net in self.outputs:
            output_counts[net] = output_counts.get(net, 0) + 1
        for net, count in output_counts.items():
            driving = self._driver.get(net)
            if driving is not None:
                loads[driving.name] += self.output_load_fF * count
        return loads

    def total_load_capacitance(self) -> float:
        """Sum of all gate loads in fF (max possible switching capacitance)."""
        return sum(self.load_capacitances().values())

    # ------------------------------------------------------------------
    # Evaluation (single pattern; batch evaluation lives in repro.sim)
    # ------------------------------------------------------------------
    def evaluate(self, pattern: Mapping[str, int] | Sequence[int]) -> Dict[str, int]:
        """Evaluate every net for one input pattern.

        ``pattern`` is either a mapping from input name to 0/1 or a
        sequence in primary-input order.  Returns values for all nets.
        """
        if isinstance(pattern, Mapping):
            values: Dict[str, int] = {
                net: int(bool(pattern[net])) for net in self.inputs
            }
        else:
            if len(pattern) != self.num_inputs:
                raise NetlistError(
                    f"pattern length {len(pattern)} != {self.num_inputs} inputs"
                )
            values = {
                net: int(bool(bit)) for net, bit in zip(self.inputs, pattern)
            }
        for gate in self.topological_order():
            operands = [values[net] for net in gate.inputs]
            values[gate.output] = eval_python(gate.cell.op, operands)
        return values

    def evaluate_outputs(
        self, pattern: Mapping[str, int] | Sequence[int]
    ) -> Dict[str, int]:
        """Evaluate and return primary-output values only."""
        values = self.evaluate(pattern)
        return {net: values[net] for net in self.outputs}

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> NetlistStats:
        """Summary statistics for tables and reports."""
        return NetlistStats(
            name=self.name,
            num_inputs=self.num_inputs,
            num_outputs=len(self.outputs),
            num_gates=self.num_gates,
            depth=self.depth() if self.gates else 0,
            total_load_capacitance_fF=self.total_load_capacitance(),
        )

    def counts_by_cell(self) -> Dict[str, int]:
        """Instance count per cell name."""
        counts: Dict[str, int] = {}
        for gate in self.gates:
            counts[gate.cell.name] = counts.get(gate.cell.name, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Content addressing
    # ------------------------------------------------------------------
    def canonical_dict(self) -> Dict:
        """Structure-only view of the netlist for content addressing.

        Covers everything the power function depends on — input/output
        nets, per-gate operator, operand nets and pin capacitances, and
        the primary-output load — and nothing it does not: the netlist's
        display name and gate instance names are labels, so two circuits
        that differ only in those hash identically.
        """
        gates = []
        for gate in self.gates:
            caps = gate.cell.input_capacitance_fF
            gates.append(
                {
                    "op": gate.cell.op.value,
                    "inputs": list(gate.inputs),
                    "output": gate.output,
                    "caps": list(caps) if isinstance(caps, tuple) else caps,
                }
            )
        return {
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "gates": gates,
            "output_load_fF": self.output_load_fF,
        }

    def content_hash(self) -> str:
        """SHA-256 hex digest of :meth:`canonical_dict`.

        The key half of the model store's content addressing: a model
        built from this netlist is cached under (this hash, build
        config), so a structurally identical netlist — whatever file or
        generator it came from — reuses the cached model.
        """
        import hashlib
        import json

        blob = json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Netlist({self.name!r}, inputs={self.num_inputs}, "
            f"outputs={len(self.outputs)}, gates={self.num_gates})"
        )


def netlist_from_canonical_dict(raw: Mapping, name: str = "wire") -> Netlist:
    """Rebuild a :class:`Netlist` from its :meth:`~Netlist.canonical_dict`.

    The inverse the distributed build path needs: a queue submitter ships
    the structure-only dict over the wire, and the worker reconstructs an
    equivalent circuit here before building.  The canonical form drops
    labels by design, so display and gate names are synthesised — but the
    round trip preserves everything content addressing covers:
    ``netlist_from_canonical_dict(n.canonical_dict()).content_hash()``
    equals ``n.content_hash()``.
    """
    try:
        inputs = list(raw["inputs"])
        outputs = list(raw["outputs"])
        gates = list(raw["gates"])
        load = float(raw["output_load_fF"])
    except (KeyError, TypeError, ValueError) as exc:
        raise NetlistError(f"malformed canonical netlist dict: {exc}") from None
    netlist = Netlist(name, output_load_fF=load)
    for net in inputs:
        netlist.add_input(str(net))
    for index, gate in enumerate(gates):
        try:
            op = GateOp(gate["op"])
            operands = [str(net) for net in gate["inputs"]]
            output = str(gate["output"])
            caps = gate["caps"]
        except (KeyError, TypeError, ValueError) as exc:
            raise NetlistError(
                f"malformed canonical gate #{index}: {exc}"
            ) from None
        cell = Cell(
            name=f"{op.value.upper()}{len(operands)}_wire",
            op=op,
            num_inputs=len(operands),
            input_capacitance_fF=(
                tuple(float(c) for c in caps)
                if isinstance(caps, (list, tuple))
                else float(caps)
            ),
        )
        netlist.add_gate(cell, operands, output)
    for net in outputs:
        netlist.add_output(str(net))
    return netlist
