"""Gate operators: Boolean semantics in three evaluation domains.

Every combinational cell in the library computes one of the operators
defined here.  Each operator knows how to evaluate itself

- on Python ints/bools (single pattern),
- on numpy boolean arrays (batch simulation), and
- on decision-diagram nodes (symbolic model construction),

so the logic simulator, the power simulator and the ADD model builder all
share one definition of gate semantics and cannot drift apart.
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence

import numpy as np

from repro.dd.manager import DDManager
from repro.errors import NetlistError


class GateOp(Enum):
    """Supported combinational operators.

    ``AND``/``OR``/``NAND``/``NOR``/``XOR``/``XNOR`` accept two or more
    inputs; ``BUF``/``INV`` exactly one; ``MUX`` exactly three, ordered
    ``(select, when0, when1)``; ``CONST0``/``CONST1`` none.
    """

    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    INV = "inv"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    MUX = "mux"


#: Operators whose arity is fixed by definition; value is the arity.
_FIXED_ARITY = {
    GateOp.CONST0: 0,
    GateOp.CONST1: 0,
    GateOp.BUF: 1,
    GateOp.INV: 1,
    GateOp.MUX: 3,
}

#: Minimum arity for the associative operators.
_MIN_ARITY = 2


def check_arity(op: GateOp, num_inputs: int) -> None:
    """Raise :class:`NetlistError` if ``num_inputs`` is invalid for ``op``."""
    fixed = _FIXED_ARITY.get(op)
    if fixed is not None:
        if num_inputs != fixed:
            raise NetlistError(
                f"{op.value} requires exactly {fixed} inputs, got {num_inputs}"
            )
    elif num_inputs < _MIN_ARITY:
        raise NetlistError(
            f"{op.value} requires at least {_MIN_ARITY} inputs, got {num_inputs}"
        )


def eval_python(op: GateOp, inputs: Sequence[int]) -> int:
    """Evaluate one pattern; inputs and result are 0/1 ints."""
    check_arity(op, len(inputs))
    if op is GateOp.CONST0:
        return 0
    if op is GateOp.CONST1:
        return 1
    if op is GateOp.BUF:
        return int(bool(inputs[0]))
    if op is GateOp.INV:
        return int(not inputs[0])
    if op is GateOp.AND:
        return int(all(inputs))
    if op is GateOp.NAND:
        return int(not all(inputs))
    if op is GateOp.OR:
        return int(any(inputs))
    if op is GateOp.NOR:
        return int(not any(inputs))
    if op in (GateOp.XOR, GateOp.XNOR):
        parity = sum(1 for bit in inputs if bit) % 2
        return parity if op is GateOp.XOR else 1 - parity
    if op is GateOp.MUX:
        select, when0, when1 = inputs
        return int(bool(when1 if select else when0))
    raise NetlistError(f"unhandled operator {op}")  # pragma: no cover


def eval_numpy(op: GateOp, inputs: Sequence[np.ndarray], num_patterns: int) -> np.ndarray:
    """Evaluate a batch of patterns; inputs and result are boolean arrays."""
    check_arity(op, len(inputs))
    if op is GateOp.CONST0:
        return np.zeros(num_patterns, dtype=bool)
    if op is GateOp.CONST1:
        return np.ones(num_patterns, dtype=bool)
    if op is GateOp.BUF:
        return inputs[0].copy()
    if op is GateOp.INV:
        return ~inputs[0]
    if op in (GateOp.AND, GateOp.NAND):
        acc = inputs[0] & inputs[1]
        for arr in inputs[2:]:
            acc = acc & arr
        return ~acc if op is GateOp.NAND else acc
    if op in (GateOp.OR, GateOp.NOR):
        acc = inputs[0] | inputs[1]
        for arr in inputs[2:]:
            acc = acc | arr
        return ~acc if op is GateOp.NOR else acc
    if op in (GateOp.XOR, GateOp.XNOR):
        acc = inputs[0] ^ inputs[1]
        for arr in inputs[2:]:
            acc = acc ^ arr
        return ~acc if op is GateOp.XNOR else acc
    if op is GateOp.MUX:
        select, when0, when1 = inputs
        return np.where(select, when1, when0)
    raise NetlistError(f"unhandled operator {op}")  # pragma: no cover


def eval_symbolic(op: GateOp, manager: DDManager, inputs: Sequence[int]) -> int:
    """Evaluate on BDD node ids; returns the output function's node id."""
    check_arity(op, len(inputs))
    if op is GateOp.CONST0:
        return manager.zero
    if op is GateOp.CONST1:
        return manager.one
    if op is GateOp.BUF:
        return inputs[0]
    if op is GateOp.INV:
        return manager.bdd_not(inputs[0])
    if op in (GateOp.AND, GateOp.NAND):
        acc = inputs[0]
        for node in inputs[1:]:
            acc = manager.bdd_and(acc, node)
        return manager.bdd_not(acc) if op is GateOp.NAND else acc
    if op in (GateOp.OR, GateOp.NOR):
        acc = inputs[0]
        for node in inputs[1:]:
            acc = manager.bdd_or(acc, node)
        return manager.bdd_not(acc) if op is GateOp.NOR else acc
    if op in (GateOp.XOR, GateOp.XNOR):
        acc = inputs[0]
        for node in inputs[1:]:
            acc = manager.bdd_xor(acc, node)
        return manager.bdd_not(acc) if op is GateOp.XNOR else acc
    if op is GateOp.MUX:
        select, when0, when1 = inputs
        return manager.ite(select, when1, when0)
    raise NetlistError(f"unhandled operator {op}")  # pragma: no cover
