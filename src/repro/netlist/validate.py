"""Netlist sanity checks beyond what construction enforces.

:class:`Netlist` already rejects duplicate drivers, bad arities and
cycles.  The checks here catch the *quiet* problems — dangling logic,
undriven outputs, inputs that never feed anything — which usually indicate
a bug in a generator or a mangled BLIF file rather than an invalid data
structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import NetlistError
from repro.netlist.netlist import Netlist


@dataclass
class ValidationReport:
    """Outcome of :func:`check_netlist`.

    ``errors`` make the netlist unusable as a power-model golden model;
    ``warnings`` are suspicious but legal (e.g. an unused primary input).
    """

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True if no errors were found (warnings allowed)."""
        return not self.errors


def check_netlist(netlist: Netlist) -> ValidationReport:
    """Run all structural checks; never raises."""
    report = ValidationReport()
    try:
        netlist.topological_order()
    except NetlistError as exc:
        report.errors.append(str(exc))
        return report

    driven = set(netlist.inputs) | {gate.output for gate in netlist.gates}
    for net in netlist.outputs:
        if net not in driven:
            report.errors.append(f"primary output {net!r} is undriven")

    used = set(netlist.outputs)
    for gate in netlist.gates:
        used.update(gate.inputs)
    for name in netlist.inputs:
        if name not in used:
            report.warnings.append(f"primary input {name!r} drives nothing")
    loads = netlist.load_capacitances()
    for gate in netlist.gates:
        if gate.output not in used:
            report.warnings.append(
                f"gate {gate.name} output {gate.output!r} is dangling"
            )
        elif loads.get(gate.name, 0.0) == 0.0:
            # Legal (the Eq.-4 contribution is just zero) but in a real
            # library it means every fanout pin capacitance is zero —
            # almost always a characterization bug, not a design choice.
            report.warnings.append(
                f"gate {gate.name} output {gate.output!r} drives zero load"
            )

    if not netlist.outputs:
        report.errors.append("netlist has no primary outputs")
    if not netlist.inputs:
        report.errors.append("netlist has no primary inputs")
    return report


def assert_valid(netlist: Netlist) -> None:
    """Raise :class:`NetlistError` if :func:`check_netlist` finds errors."""
    report = check_netlist(netlist)
    if not report.ok:
        raise NetlistError(
            f"netlist {netlist.name!r} failed validation: "
            + "; ".join(report.errors)
        )
