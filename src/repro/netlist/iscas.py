"""Reader for the ISCAS-85 ``.isc`` netlist format.

The ISCAS-85 combinational benchmarks (C432 ... C6288 — the paper names
C6288 as the hard case for ADD sizes) are distributed in a line-oriented
format: each signal is declared with an address, a name, a gate type, its
fanout/fanin counts and a fault list, followed by a line of fanin
addresses; heavily loaded signals additionally get explicit ``from``
branch lines naming their stem.

This reader maps those declarations onto the gate library: ``inpt``
becomes a primary input, ``from`` branches collapse into their stem net,
and signals with zero declared fanout become primary outputs (the
convention the suite uses).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ParseError
from repro.netlist.gates import GateOp
from repro.netlist.library import DEFAULT_OUTPUT_LOAD_FF, Library, TEST_LIBRARY
from repro.netlist.netlist import Netlist

_OP_BY_TYPE = {
    "and": GateOp.AND,
    "nand": GateOp.NAND,
    "or": GateOp.OR,
    "nor": GateOp.NOR,
    "xor": GateOp.XOR,
    "xnor": GateOp.XNOR,
    "not": GateOp.INV,
    "buff": GateOp.BUF,
    "buf": GateOp.BUF,
}


def parse_iscas(
    text: str,
    name: str = "iscas_circuit",
    library: Library = TEST_LIBRARY,
    output_load_fF: float = DEFAULT_OUTPUT_LOAD_FF,
) -> Netlist:
    """Parse ISCAS-85 text into a mapped :class:`Netlist`."""
    lines = text.splitlines()
    # First pass: collect declarations.
    declarations: Dict[int, dict] = {}
    order: List[int] = []
    index = 0
    while index < len(lines):
        line = lines[index].split("*", 1)[0].rstrip()
        index += 1
        if not line.strip():
            continue
        parts = line.split()
        if len(parts) < 3:
            raise ParseError(f"malformed declaration {line!r}", index)
        try:
            address = int(parts[0])
        except ValueError:
            raise ParseError(f"bad signal address in {line!r}", index) from None
        signal_name, kind = parts[1], parts[2].lower()
        if kind == "from":
            if len(parts) < 4:
                raise ParseError(f"'from' branch needs a stem: {line!r}", index)
            declarations[address] = {
                "name": signal_name,
                "kind": "from",
                "stem": parts[3],
            }
            order.append(address)
            continue
        if kind == "inpt":
            if len(parts) < 5:
                raise ParseError(f"malformed input declaration {line!r}", index)
            declarations[address] = {
                "name": signal_name,
                "kind": "inpt",
                "fanout": int(parts[3]),
            }
            order.append(address)
            continue
        if kind not in _OP_BY_TYPE:
            raise ParseError(f"unknown gate type {kind!r}", index)
        if len(parts) < 5:
            raise ParseError(f"malformed gate declaration {line!r}", index)
        fanout, fanin = int(parts[3]), int(parts[4])
        if fanin < 1:
            raise ParseError(f"gate {signal_name!r} declares no fanins", index)
        # The next non-empty line carries the fanin addresses.
        while index < len(lines) and not lines[index].split("*", 1)[0].strip():
            index += 1
        if index >= len(lines):
            raise ParseError(f"missing fanin list for {signal_name!r}", index)
        fanin_line = lines[index].split("*", 1)[0]
        index += 1
        try:
            fanins = [int(tok) for tok in fanin_line.split()]
        except ValueError:
            raise ParseError(
                f"bad fanin list for {signal_name!r}: {fanin_line!r}", index
            ) from None
        if len(fanins) != fanin:
            raise ParseError(
                f"gate {signal_name!r} declares {fanin} fanins but lists "
                f"{len(fanins)}",
                index,
            )
        declarations[address] = {
            "name": signal_name,
            "kind": kind,
            "fanout": fanout,
            "fanins": fanins,
        }
        order.append(address)

    if not declarations:
        raise ParseError("empty ISCAS description")

    # Resolve 'from' branches to their stem addresses (branches are pure
    # fanout bookkeeping; electrically they are the same net).
    name_to_address = {}
    for address in order:
        declaration = declarations[address]
        if declaration["kind"] != "from":
            name_to_address[declaration["name"]] = address

    def resolve(address: int) -> int:
        seen = set()
        while declarations[address]["kind"] == "from":
            if address in seen:
                raise ParseError("cyclic 'from' branch chain")
            seen.add(address)
            stem_name = declarations[address]["stem"]
            try:
                address = name_to_address[stem_name]
            except KeyError:
                raise ParseError(
                    f"'from' branch references unknown stem {stem_name!r}"
                ) from None
        return address

    # Second pass: build the netlist.
    netlist = Netlist(name, library, output_load_fF)
    net_of: Dict[int, str] = {}
    for address in order:
        declaration = declarations[address]
        if declaration["kind"] == "inpt":
            net = declaration["name"]
            netlist.add_input(net)
            net_of[address] = net
    for address in order:
        declaration = declarations[address]
        if declaration["kind"] in ("inpt", "from"):
            continue
        op = _OP_BY_TYPE[declaration["kind"]]
        sources = []
        for fanin_address in declaration["fanins"]:
            if fanin_address not in declarations:
                raise ParseError(
                    f"gate {declaration['name']!r} references unknown "
                    f"address {fanin_address}"
                )
            sources.append(net_of[resolve(fanin_address)])
        if op in (GateOp.BUF, GateOp.INV) and len(sources) != 1:
            raise ParseError(
                f"gate {declaration['name']!r}: {op.value} needs one fanin"
            )
        cell = library.cell_for_op(op, len(sources))
        net = declaration["name"]
        netlist.add_gate(cell, sources, net)
        net_of[address] = net
    # Outputs: signals declared with zero fanout.
    for address in order:
        declaration = declarations[address]
        if declaration["kind"] in ("from",):
            continue
        if declaration.get("fanout", 1) == 0:
            netlist.add_output(net_of[address])
    if not netlist.outputs:
        raise ParseError("no zero-fanout signals; cannot infer outputs")
    netlist.topological_order()
    return netlist


def read_iscas(
    path: str,
    name: str | None = None,
    library: Library = TEST_LIBRARY,
    output_load_fF: float = DEFAULT_OUTPUT_LOAD_FF,
) -> Netlist:
    """Read and parse an ISCAS-85 ``.isc`` file."""
    if name is None:
        base = path.rsplit("/", 1)[-1]
        name = base.rsplit(".", 1)[0]
    with open(path, "r", encoding="utf-8") as handle:
        return parse_iscas(handle.read(), name, library, output_load_fF)
