"""Gate-level netlist substrate: the paper's *golden model* layer.

Cells and capacitances (:mod:`~repro.netlist.library`), the netlist data
structure with load back-annotation (:mod:`~repro.netlist.netlist`),
construction helpers with structural hashing
(:mod:`~repro.netlist.synth`), BLIF and structural-Verilog I/O, symbolic
node functions, and validation.
"""

from repro.netlist.blif import parse_blif, read_blif, save_blif, write_blif
from repro.netlist.gates import GateOp, check_arity, eval_numpy, eval_python, eval_symbolic
from repro.netlist.library import (
    DEFAULT_OUTPUT_LOAD_FF,
    TEST_LIBRARY,
    Cell,
    Library,
)
from repro.netlist.iscas import parse_iscas, read_iscas
from repro.netlist.minimize import literal_count, minimize_cover
from repro.netlist.netlist import (
    Gate,
    Netlist,
    NetlistStats,
    netlist_from_canonical_dict,
)
from repro.netlist.sop import Cover, minterm_cover
from repro.netlist.symbolic import (
    build_node_functions,
    build_output_functions,
    check_equivalent,
)
from repro.netlist.synth import NetlistBuilder
from repro.netlist.validate import ValidationReport, assert_valid, check_netlist
from repro.netlist.verilog import (
    parse_verilog,
    read_verilog,
    save_verilog,
    write_verilog,
)

__all__ = [
    "GateOp",
    "check_arity",
    "eval_python",
    "eval_numpy",
    "eval_symbolic",
    "Cell",
    "Library",
    "TEST_LIBRARY",
    "DEFAULT_OUTPUT_LOAD_FF",
    "Gate",
    "Netlist",
    "NetlistStats",
    "NetlistBuilder",
    "netlist_from_canonical_dict",
    "Cover",
    "minterm_cover",
    "parse_blif",
    "read_blif",
    "write_blif",
    "save_blif",
    "parse_iscas",
    "read_iscas",
    "minimize_cover",
    "literal_count",
    "parse_verilog",
    "read_verilog",
    "write_verilog",
    "save_verilog",
    "build_node_functions",
    "build_output_functions",
    "check_equivalent",
    "ValidationReport",
    "check_netlist",
    "assert_valid",
]
