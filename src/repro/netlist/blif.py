"""BLIF reader and writer.

BLIF (Berkeley Logic Interchange Format) is how the MCNC'91 benchmark
suite the paper evaluates on is distributed.  The reader accepts the
combinational subset — ``.model``, ``.inputs``, ``.outputs``, ``.names``
with SOP cube rows, ``.end``, line continuations with ``\\`` and ``#``
comments — and *maps* every logic node onto the gate library through
:class:`~repro.netlist.synth.NetlistBuilder`, mirroring the paper's
"mapping the circuits on a test gate library" step.

Latches (``.latch``) are rejected: the paper (and this library) models
combinational macros.
"""

from __future__ import annotations

import io
from typing import Dict, List, Sequence, TextIO, Tuple

from repro.errors import ParseError
from repro.netlist.gates import GateOp
from repro.netlist.library import DEFAULT_OUTPUT_LOAD_FF, Library, TEST_LIBRARY
from repro.netlist.netlist import Gate, Netlist
from repro.netlist.sop import Cover
from repro.netlist.synth import NetlistBuilder


def _logical_lines(text: str) -> List[Tuple[int, str]]:
    """Split text into (line number, logical line) pairs.

    Strips comments, joins ``\\`` continuations, drops blanks.  The line
    number refers to the first physical line of each logical line.
    """
    result: List[Tuple[int, str]] = []
    pending = ""
    pending_start = 0
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        if not pending:
            pending_start = number
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        pending += line
        stripped = pending.strip()
        if stripped:
            result.append((pending_start, stripped))
        pending = ""
    if pending.strip():
        result.append((pending_start, pending.strip()))
    return result


def parse_blif(
    text: str,
    library: Library = TEST_LIBRARY,
    output_load_fF: float = DEFAULT_OUTPUT_LOAD_FF,
    minimize: bool = False,
) -> Netlist:
    """Parse BLIF text into a mapped :class:`Netlist`.

    With ``minimize=True`` every node's cover goes through the two-level
    minimiser (:func:`repro.netlist.minimize.minimize_cover`) before
    decomposition — the espresso step of the classic MCNC flow, usually
    yielding noticeably fewer mapped gates.
    """
    model_name = "blif_model"
    inputs: List[str] = []
    outputs: List[str] = []
    # Each .names block: (line, output net, input nets, cube rows)
    names_blocks: List[Tuple[int, str, List[str], List[str]]] = []
    current: Tuple[int, str, List[str], List[str]] | None = None
    seen_model = False
    ended = False

    for number, line in _logical_lines(text):
        if ended:
            raise ParseError("content after .end", number)
        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            if directive == ".model":
                if seen_model:
                    raise ParseError("multiple .model directives", number)
                seen_model = True
                if len(parts) > 1:
                    model_name = parts[1]
            elif directive == ".inputs":
                inputs.extend(parts[1:])
            elif directive == ".outputs":
                outputs.extend(parts[1:])
            elif directive == ".names":
                if len(parts) < 2:
                    raise ParseError(".names requires an output net", number)
                current = (number, parts[-1], parts[1:-1], [])
                names_blocks.append(current)
            elif directive == ".latch":
                raise ParseError(
                    "sequential elements (.latch) are not supported; "
                    "extract the combinational macro first",
                    number,
                )
            elif directive == ".end":
                ended = True
                current = None
            elif directive in (".exdc", ".gate", ".mlatch", ".subckt"):
                raise ParseError(f"unsupported directive {directive}", number)
            else:
                # Unknown dot-directives (e.g. .default_input_arrival) are
                # timing/area annotations — ignore them.
                current = None
        else:
            if current is None:
                raise ParseError(f"cube row outside .names block: {line!r}", number)
            current[3].append(line)

    if not inputs:
        raise ParseError("no .inputs declared")
    if not outputs:
        raise ParseError("no .outputs declared")

    builder = NetlistBuilder(model_name, library, output_load_fF)
    reserved = set(inputs) | set(outputs)
    for _, block_output, block_nets, _rows in names_blocks:
        reserved.add(block_output)
        reserved.update(block_nets)
    builder.reserve_names(reserved)
    builder.inputs(inputs)
    driven = set(inputs)
    for number, output, nets, rows in names_blocks:
        if output in driven:
            raise ParseError(f"net {output!r} defined twice", number)
        driven.add(output)
        cover = _rows_to_cover(number, len(nets), rows)
        if minimize:
            from repro.netlist.minimize import minimize_cover

            cover = minimize_cover(cover)
        _instantiate_cover(builder, nets, output, cover)
    for net in outputs:
        if net not in driven:
            raise ParseError(f"primary output {net!r} is never defined")
        builder.netlist.add_output(net)
    return builder.build()


def _rows_to_cover(line: int, num_inputs: int, rows: Sequence[str]) -> Cover:
    """Convert raw .names rows to a :class:`Cover`."""
    if not rows:
        return Cover(num_inputs, (), covers_onset=True)  # constant 0
    cubes: List[str] = []
    polarity: str | None = None
    for row in rows:
        parts = row.split()
        if num_inputs == 0:
            if len(parts) != 1:
                raise ParseError(f"bad constant row {row!r}", line)
            in_bits, out_bit = "", parts[0]
        elif len(parts) == 2:
            in_bits, out_bit = parts
        else:
            raise ParseError(f"bad cube row {row!r}", line)
        if out_bit not in ("0", "1"):
            raise ParseError(f"output bit must be 0 or 1 in {row!r}", line)
        if polarity is None:
            polarity = out_bit
        elif polarity != out_bit:
            raise ParseError("mixed-polarity cover in one .names block", line)
        if len(in_bits) != num_inputs:
            raise ParseError(
                f"cube width {len(in_bits)} != {num_inputs} inputs in {row!r}",
                line,
            )
        cubes.append(in_bits)
    return Cover(num_inputs, tuple(cubes), covers_onset=(polarity == "1"))


def _instantiate_cover(
    builder: NetlistBuilder, nets: List[str], output: str, cover: Cover
) -> None:
    """Decompose a cover onto the library, driving net ``output``."""
    if cover.num_inputs == 0:
        value = cover.evaluate([]) == 1
        op = GateOp.CONST1 if value else GateOp.CONST0
        builder.gate(op, [], output=output)
        return
    # Single positive/negative literal covers map to BUF/INV directly.
    if len(cover.cubes) == 1 and cover.num_literals == 1:
        position = next(
            i for i, char in enumerate(cover.cubes[0]) if char != "-"
        )
        positive = (cover.cubes[0][position] == "1") == cover.covers_onset
        op = GateOp.BUF if positive else GateOp.INV
        builder.gate(op, [nets[position]], output=output)
        return
    result = builder.sop(nets, list(cover.cubes), invert=not cover.covers_onset)
    builder.gate(GateOp.BUF, [result], output=output)


def read_blif(
    path: str,
    library: Library = TEST_LIBRARY,
    output_load_fF: float = DEFAULT_OUTPUT_LOAD_FF,
    minimize: bool = False,
) -> Netlist:
    """Read and parse a BLIF file (see :func:`parse_blif`)."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_blif(handle.read(), library, output_load_fF, minimize)


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
def _gate_rows(gate: Gate) -> List[str]:
    """BLIF cube rows implementing one library gate."""
    op = gate.cell.op
    k = len(gate.inputs)
    if op is GateOp.CONST0:
        return []
    if op is GateOp.CONST1:
        return ["1"]
    if op is GateOp.BUF:
        return ["1 1"]
    if op is GateOp.INV:
        return ["0 1"]
    if op is GateOp.AND:
        return ["1" * k + " 1"]
    if op is GateOp.NAND:
        return ["1" * k + " 0"]
    if op is GateOp.OR:
        return [("-" * i + "1" + "-" * (k - i - 1)) + " 1" for i in range(k)]
    if op is GateOp.NOR:
        return ["0" * k + " 1"]
    if op in (GateOp.XOR, GateOp.XNOR):
        want = 1 if op is GateOp.XOR else 0
        rows = []
        for value in range(2 ** k):
            bits = format(value, f"0{k}b")
            if bits.count("1") % 2 == want:
                rows.append(bits + " 1")
        return rows
    if op is GateOp.MUX:
        # Pin order (select, when0, when1).
        return ["01- 1", "1-1 1"]
    raise ParseError(f"cannot serialise operator {op}")  # pragma: no cover


def write_blif(netlist: Netlist, stream: TextIO | None = None) -> str:
    """Serialise a netlist as BLIF; returns the text (and writes to stream)."""
    out = stream if stream is not None else io.StringIO()
    out.write(f".model {netlist.name}\n")
    out.write(".inputs " + " ".join(netlist.inputs) + "\n")
    out.write(".outputs " + " ".join(netlist.outputs) + "\n")
    for gate in netlist.topological_order():
        header = " ".join((".names",) + gate.inputs + (gate.output,))
        out.write(header + "\n")
        for row in _gate_rows(gate):
            out.write(row + "\n")
    out.write(".end\n")
    return out.getvalue() if isinstance(out, io.StringIO) else ""


def save_blif(netlist: Netlist, path: str) -> None:
    """Write a netlist to a BLIF file."""
    with open(path, "w", encoding="utf-8") as handle:
        write_blif(netlist, handle)
