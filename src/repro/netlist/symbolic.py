"""Symbolic evaluation of a netlist: node-function BDDs.

This computes the ``g_j(x)`` of Eq. 3-4 — the Boolean function each gate's
output realises in terms of the primary inputs — as BDDs, by a single
topological sweep that applies each gate's operator symbolically.

Used by the ADD model builder (over the ``x_i`` variable copy, then
renamed to ``x_f``) and by equivalence checks in the test suite.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.dd.manager import DDManager
from repro.errors import NetlistError
from repro.netlist.gates import eval_symbolic
from repro.netlist.netlist import Netlist
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer

_MET = get_metrics()
_SWEEPS = _MET.counter("symbolic.sweeps")
_GATE_OPS = _MET.counter("symbolic.gate_ops")


def build_node_functions(
    netlist: Netlist,
    manager: DDManager,
    input_vars: Mapping[str, int],
) -> Dict[str, int]:
    """BDD node id of every net's function over the primary inputs.

    Parameters
    ----------
    netlist:
        The circuit to abstract.
    manager:
        Decision-diagram manager to build in.
    input_vars:
        Map from primary-input name to its DD variable index.

    Returns a dict from net name (inputs included) to BDD node id.
    """
    missing = [name for name in netlist.inputs if name not in input_vars]
    if missing:
        raise NetlistError(f"no DD variable given for inputs {missing[:5]}")
    tracer = get_tracer()
    with tracer.span("symbolic.build", netlist=netlist.name) as span:
        functions: Dict[str, int] = {
            name: manager.var(input_vars[name]) for name in netlist.inputs
        }
        for gate in netlist.topological_order():
            operands = [functions[net] for net in gate.inputs]
            functions[gate.output] = eval_symbolic(gate.cell.op, manager, operands)
        if tracer.enabled:
            span.update(
                num_gates=netlist.num_gates, num_inputs=netlist.num_inputs
            )
            # Per-output visibility: the sweep interleaves all output
            # cones, so instead of per-output timing (meaningless here)
            # each output gets an instant event carrying its BDD size.
            for net in netlist.outputs:
                tracer.event(
                    "symbolic.output",
                    output=net,
                    nodes=manager.size(functions[net]),
                )
    _SWEEPS.inc()
    _GATE_OPS.inc(netlist.num_gates)
    return functions


def build_output_functions(
    netlist: Netlist,
    manager: DDManager,
    input_vars: Mapping[str, int],
) -> Dict[str, int]:
    """BDDs of the primary outputs only (functional signature of the macro)."""
    functions = build_node_functions(netlist, manager, input_vars)
    return {net: functions[net] for net in netlist.outputs}


def check_equivalent(left: Netlist, right: Netlist) -> bool:
    """True if two netlists compute identical primary-output functions.

    Both must have the same primary-input and output names.  Comparison is
    exact (canonical BDDs), so this is a complete combinational
    equivalence check.
    """
    if set(left.inputs) != set(right.inputs):
        raise NetlistError("netlists have different primary inputs")
    if list(left.outputs) != list(right.outputs):
        raise NetlistError("netlists have different primary outputs")
    names = sorted(left.inputs)
    manager = DDManager(len(names), names)
    variables = {name: index for index, name in enumerate(names)}
    left_funcs = build_output_functions(left, manager, variables)
    right_funcs = build_output_functions(right, manager, variables)
    return all(left_funcs[net] == right_funcs[net] for net in left.outputs)
