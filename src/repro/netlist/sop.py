"""Sum-of-products covers (the logic representation inside BLIF files).

A :class:`Cover` is a PLA-style description of one single-output Boolean
function: a list of cubes over the function's inputs plus the polarity of
the covered set.  The MCNC benchmark format (BLIF) describes every logic
node this way; :mod:`repro.netlist.blif` parses files into covers and then
decomposes them onto the gate library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from repro.errors import NetlistError

_VALID_CHARS = frozenset("01-")


@dataclass(frozen=True)
class Cover:
    """A single-output SOP cover.

    Attributes
    ----------
    num_inputs:
        Number of input variables.
    cubes:
        Rows of ``0`` / ``1`` / ``-`` characters, one per input, each
        describing a product term.
    covers_onset:
        True if the cubes describe where the function is 1 (the usual
        case); False if they describe the 0-set, i.e. the function is the
        complement of the cube union.
    """

    num_inputs: int
    cubes: Tuple[str, ...]
    covers_onset: bool = True

    def __post_init__(self) -> None:
        for cube in self.cubes:
            if len(cube) != self.num_inputs:
                raise NetlistError(
                    f"cube {cube!r} has width {len(cube)}, expected {self.num_inputs}"
                )
            bad = set(cube) - _VALID_CHARS
            if bad:
                raise NetlistError(f"cube {cube!r} has invalid characters {bad}")

    @staticmethod
    def constant(value: bool) -> "Cover":
        """Cover of a constant function of zero inputs."""
        return Cover(0, ("",) if value else (), covers_onset=True)

    def cube_matches(self, cube: str, bits: Sequence[int]) -> bool:
        """True if ``bits`` lies inside ``cube``."""
        for char, bit in zip(cube, bits):
            if char == "1" and not bit:
                return False
            if char == "0" and bit:
                return False
        return True

    def evaluate(self, bits: Sequence[int]) -> int:
        """Evaluate the cover for one input assignment."""
        if len(bits) != self.num_inputs:
            raise NetlistError(
                f"assignment width {len(bits)} != {self.num_inputs} inputs"
            )
        covered = any(self.cube_matches(cube, bits) for cube in self.cubes)
        return int(covered == self.covers_onset)

    @property
    def num_literals(self) -> int:
        """Total literal count (a standard cover-size measure)."""
        return sum(
            sum(1 for char in cube if char != "-") for cube in self.cubes
        )

    def complement_polarity(self) -> "Cover":
        """Same cube list interpreted with opposite polarity."""
        return Cover(self.num_inputs, self.cubes, not self.covers_onset)


def minterm_cover(num_inputs: int, minterms: Iterable[int]) -> Cover:
    """Build a cover from explicit minterm indices (MSB-first variable order)."""
    cubes: List[str] = []
    for term in sorted(set(minterms)):
        if not 0 <= term < 2 ** num_inputs:
            raise NetlistError(
                f"minterm {term} out of range for {num_inputs} inputs"
            )
        bits = format(term, f"0{num_inputs}b") if num_inputs else ""
        cubes.append(bits)
    return Cover(num_inputs, tuple(cubes))
