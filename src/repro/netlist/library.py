"""Technology library: cells with per-input capacitances.

The paper maps the MCNC circuits "on a test gate library" and uses the
input capacitances of fanout gates as the load capacitance of the driving
gate.  :data:`TEST_LIBRARY` plays the role of that test library; its
capacitance values are representative of a mid-1990s standard-cell process
(a few tens of femtofarads per pin) — absolute values only scale the
energy axis, never the relative accuracies the experiments measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Sequence, Tuple

from repro.errors import NetlistError
from repro.netlist.gates import GateOp, check_arity


@dataclass(frozen=True)
class Cell:
    """One library cell.

    Attributes
    ----------
    name:
        Unique cell name, e.g. ``"NAND2"``.
    op:
        The Boolean operator the cell computes.
    num_inputs:
        Pin count; validated against the operator's arity rules.
    input_capacitance_fF:
        Capacitance of each input pin in femtofarads.  A single float
        applies to all pins; a tuple gives per-pin values (ordered like
        the gate's input list).
    area:
        Relative cell area (arbitrary units), for reporting only.
    """

    name: str
    op: GateOp
    num_inputs: int
    input_capacitance_fF: float | Tuple[float, ...] = 8.0
    area: float = 1.0

    def __post_init__(self) -> None:
        check_arity(self.op, self.num_inputs)
        caps = self.input_capacitance_fF
        if isinstance(caps, tuple):
            if len(caps) != self.num_inputs:
                raise NetlistError(
                    f"cell {self.name}: {len(caps)} pin capacitances for "
                    f"{self.num_inputs} inputs"
                )
            if any(c < 0 for c in caps):
                raise NetlistError(f"cell {self.name}: negative pin capacitance")
        elif caps < 0:
            raise NetlistError(f"cell {self.name}: negative pin capacitance")

    def pin_capacitance(self, pin: int) -> float:
        """Capacitance of input pin ``pin`` in fF."""
        if not 0 <= pin < self.num_inputs:
            raise NetlistError(f"cell {self.name}: pin {pin} out of range")
        caps = self.input_capacitance_fF
        return caps[pin] if isinstance(caps, tuple) else caps

    @property
    def total_input_capacitance(self) -> float:
        """Sum of all pin capacitances in fF."""
        return sum(self.pin_capacitance(i) for i in range(self.num_inputs))


class Library:
    """A named collection of :class:`Cell` objects."""

    def __init__(self, name: str, cells: Sequence[Cell]):
        self.name = name
        self._cells: Dict[str, Cell] = {}
        for cell in cells:
            if cell.name in self._cells:
                raise NetlistError(f"duplicate cell name {cell.name!r}")
            self._cells[cell.name] = cell

    def __getitem__(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise NetlistError(
                f"library {self.name!r} has no cell {name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self) -> Iterator[Cell]:
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    def cell_for_op(self, op: GateOp, num_inputs: int) -> Cell:
        """Find a cell implementing ``op`` with the given pin count."""
        for cell in self._cells.values():
            if cell.op is op and cell.num_inputs == num_inputs:
                return cell
        raise NetlistError(
            f"library {self.name!r} has no {num_inputs}-input {op.value} cell"
        )


#: Default test library used throughout the experiments.  Capacitances in
#: fF; inverting CMOS gates are cheap, XOR/MUX pay for their pass-gate or
#: dual-stage structure with higher pin loads.
TEST_LIBRARY = Library(
    "test_lib",
    [
        Cell("TIE0", GateOp.CONST0, 0, input_capacitance_fF=(), area=0.25),
        Cell("TIE1", GateOp.CONST1, 0, input_capacitance_fF=(), area=0.25),
        Cell("BUF1", GateOp.BUF, 1, input_capacitance_fF=6.0, area=1.0),
        Cell("INV1", GateOp.INV, 1, input_capacitance_fF=5.0, area=0.5),
        Cell("AND2", GateOp.AND, 2, input_capacitance_fF=9.0, area=1.5),
        Cell("OR2", GateOp.OR, 2, input_capacitance_fF=9.0, area=1.5),
        Cell("NAND2", GateOp.NAND, 2, input_capacitance_fF=7.0, area=1.0),
        Cell("NOR2", GateOp.NOR, 2, input_capacitance_fF=8.0, area=1.0),
        Cell("XOR2", GateOp.XOR, 2, input_capacitance_fF=13.0, area=2.5),
        Cell("XNOR2", GateOp.XNOR, 2, input_capacitance_fF=13.0, area=2.5),
        Cell("MUX2", GateOp.MUX, 3, input_capacitance_fF=(8.0, 10.0, 10.0), area=2.5),
    ],
)

#: Load seen by a primary-output net, in fF (models the pad / register it
#: drives).  Without it, gates feeding only primary outputs would have zero
#: load and contribute no structural power at all.
DEFAULT_OUTPUT_LOAD_FF = 15.0
