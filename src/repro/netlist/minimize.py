"""Two-level SOP minimisation (a light Quine-McCluskey / espresso step).

MCNC benchmark flows minimise each node's cover before technology
mapping; this module provides that step for the BLIF front-end.  It is a
cube-level minimiser: iterated distance-1 merging (the Quine-McCluskey
combining rule generalised to cubes), single-cube containment removal,
and a greedy irredundant-cover pass.  Exact minimality is not the goal —
the output is a functionally identical cover with (usually far) fewer
literals, which decomposes into fewer gates.

All operations treat a cube as a string over ``{'0', '1', '-'}``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import NetlistError
from repro.netlist.sop import Cover


def cube_contains(outer: str, inner: str) -> bool:
    """True if every minterm of ``inner`` lies inside ``outer``."""
    for o, i in zip(outer, inner):
        if o != "-" and o != i:
            return False
    return True


def cubes_intersect(left: str, right: str) -> bool:
    """True if the two cubes share at least one minterm."""
    for l, r in zip(left, right):
        if l != "-" and r != "-" and l != r:
            return False
    return True


def merge_distance_one(left: str, right: str) -> Optional[str]:
    """Combine two cubes differing in exactly one *specified* position.

    ``10-0`` and ``11-0`` merge to ``1--0``; cubes that differ in their
    don't-care pattern or in more than one care position do not merge.
    """
    if len(left) != len(right):
        raise NetlistError("cubes must have equal width")
    difference = -1
    for k, (l, r) in enumerate(zip(left, right)):
        if l == r:
            continue
        if l == "-" or r == "-" or difference >= 0:
            return None
        difference = k
    if difference < 0:
        return None  # identical cubes
    return left[:difference] + "-" + left[difference + 1 :]


def remove_contained(cubes: Sequence[str]) -> List[str]:
    """Drop cubes entirely covered by another single cube."""
    kept: List[str] = []
    # Wider cubes (more don't-cares) first, so they absorb narrower ones.
    for cube in sorted(set(cubes), key=lambda c: -c.count("-")):
        if not any(cube_contains(existing, cube) for existing in kept):
            kept.append(cube)
    return kept


def expand_cubes(cubes: Sequence[str]) -> List[str]:
    """Iterate distance-1 merging to a fixed point (prime-ish cubes)."""
    current: Set[str] = set(cubes)
    while True:
        merged: Set[str] = set()
        used: Set[str] = set()
        items = sorted(current)
        for i, left in enumerate(items):
            for right in items[i + 1 :]:
                combined = merge_distance_one(left, right)
                if combined is not None:
                    merged.add(combined)
                    used.add(left)
                    used.add(right)
        if not merged:
            return remove_contained(sorted(current))
        # Keep unmerged cubes; merged pairs are replaced by their union.
        current = (current - used) | merged


def _cube_minterm_count(cube: str) -> int:
    return 2 ** cube.count("-")


def irredundant(cubes: Sequence[str], width: int) -> List[str]:
    """Greedy irredundant cover: drop cubes whose minterms are covered.

    Exact for the cover sizes BLIF nodes have (set-cover greedy over
    explicit minterms); refuses covers too wide to enumerate.
    """
    if width > 16:
        # Enumeration would explode; containment removal already ran.
        return list(cubes)

    def minterms(cube: str) -> Set[int]:
        positions = [k for k, c in enumerate(cube) if c == "-"]
        base = int(cube.replace("-", "0"), 2) if width else 0
        result = set()
        for mask in range(2 ** len(positions)):
            value = base
            for bit, position in enumerate(positions):
                if (mask >> bit) & 1:
                    value |= 1 << (width - 1 - position)
            result.add(value)
        return result

    cube_terms = {cube: minterms(cube) for cube in set(cubes)}
    target: Set[int] = set()
    for terms in cube_terms.values():
        target |= terms
    chosen: List[str] = []
    covered: Set[int] = set()
    remaining = dict(cube_terms)
    while covered != target:
        best_cube = max(
            remaining,
            key=lambda c: (len(remaining[c] - covered), c.count("-"), c),
        )
        gain = remaining[best_cube] - covered
        if not gain:
            break
        chosen.append(best_cube)
        covered |= gain
        del remaining[best_cube]
    return sorted(chosen)


def minimize_cover(cover: Cover) -> Cover:
    """Functionally identical cover with merged, irredundant cubes."""
    if not cover.cubes:
        return cover
    expanded = expand_cubes(cover.cubes)
    reduced = irredundant(expanded, cover.num_inputs)
    return Cover(cover.num_inputs, tuple(reduced), cover.covers_onset)


def literal_count(cubes: Iterable[str]) -> int:
    """Total specified literals across cubes (the cost being minimised)."""
    return sum(len(c) - c.count("-") for c in cubes)
