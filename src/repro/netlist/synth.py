"""Netlist construction helpers and naive technology decomposition.

:class:`NetlistBuilder` is the programmatic way to assemble mapped
netlists: it instantiates library cells, auto-names nets, and performs
*structural hashing* — asking twice for ``AND(a, b)`` returns the same net
instead of duplicating the gate, like the hash-consing step of a
technology mapper.

The tree builders (:meth:`NetlistBuilder.and_tree` etc.) produce balanced
two-input decompositions of wide operators, which is how the benchmark
generators and the BLIF front-end "map onto the test gate library" as the
paper's experimental setup describes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import NetlistError
from repro.netlist.gates import GateOp
from repro.netlist.library import DEFAULT_OUTPUT_LOAD_FF, Library, TEST_LIBRARY
from repro.netlist.netlist import Netlist


class NetlistBuilder:
    """Incremental construction of a mapped :class:`Netlist`.

    All gate methods take *net names* and return the output net name, so
    expressions compose naturally::

        b = NetlistBuilder("half_adder")
        a, c = b.input("a"), b.input("c")
        b.output("sum", b.xor2(a, c))
        b.output("carry", b.and2(a, c))
        netlist = b.build()
    """

    def __init__(
        self,
        name: str,
        library: Library = TEST_LIBRARY,
        output_load_fF: float = DEFAULT_OUTPUT_LOAD_FF,
        share_structure: bool = True,
    ):
        self.netlist = Netlist(name, library, output_load_fF)
        self.share_structure = share_structure
        self._next_net = 0
        self._structure: Dict[Tuple, str] = {}
        self._const_nets: Dict[bool, str] = {}
        self._reserved: set[str] = set()

    def reserve_names(self, names) -> None:
        """Declare net names :meth:`fresh_net` must never produce.

        File front-ends (BLIF/Verilog) reserve every name appearing in
        the source so generated internal nets cannot collide with nets
        defined later in the file.
        """
        self._reserved.update(names)

    # ------------------------------------------------------------------
    # Net plumbing
    # ------------------------------------------------------------------
    def input(self, name: str) -> str:
        """Declare a primary input."""
        return self.netlist.add_input(name)

    def inputs(self, names: Sequence[str]) -> List[str]:
        """Declare several primary inputs; returns their names."""
        return [self.input(name) for name in names]

    def bus(self, prefix: str, width: int) -> List[str]:
        """Declare ``width`` inputs named ``prefix0 .. prefix{width-1}``."""
        return self.inputs([f"{prefix}{i}" for i in range(width)])

    def output(self, name: str, net: str) -> str:
        """Expose ``net`` as primary output ``name`` (buffering if needed).

        If the net name already matches, it is marked directly; otherwise
        a BUF is inserted so the output carries the requested name.
        """
        if net != name:
            net = self.gate(GateOp.BUF, [net], output=name)
        self.netlist.add_output(net)
        return net

    def fresh_net(self, hint: str = "n") -> str:
        """Allocate a unique internal net name (avoiding reserved names)."""
        while True:
            self._next_net += 1
            candidate = f"{hint}_{self._next_net}"
            if candidate not in self._reserved:
                return candidate

    # ------------------------------------------------------------------
    # Gate instantiation
    # ------------------------------------------------------------------
    def gate(self, op: GateOp, inputs: Sequence[str], output: str | None = None) -> str:
        """Instantiate the library cell for ``op``; returns the output net.

        With structural sharing on (default), a commutative gate with the
        same operand set reuses the existing instance — unless a specific
        ``output`` name is requested.
        """
        cell = self.netlist.library.cell_for_op(op, len(inputs))
        key = self._structure_key(op, inputs)
        if output is None and self.share_structure:
            existing = self._structure.get(key)
            if existing is not None:
                return existing
        net = output if output is not None else self.fresh_net(op.value)
        self.netlist.add_gate(cell, inputs, net)
        if self.share_structure and key not in self._structure:
            self._structure[key] = net
        return net

    def _structure_key(self, op: GateOp, inputs: Sequence[str]) -> Tuple:
        if op in (GateOp.AND, GateOp.OR, GateOp.NAND, GateOp.NOR, GateOp.XOR, GateOp.XNOR):
            return (op, tuple(sorted(inputs)))
        return (op, tuple(inputs))

    def const(self, value: bool) -> str:
        """Net tied to constant 0 or 1."""
        key = bool(value)
        if key not in self._const_nets:
            op = GateOp.CONST1 if key else GateOp.CONST0
            self._const_nets[key] = self.gate(op, [])
        return self._const_nets[key]

    def buf(self, a: str) -> str:
        """Buffer."""
        return self.gate(GateOp.BUF, [a])

    def inv(self, a: str) -> str:
        """Inverter."""
        return self.gate(GateOp.INV, [a])

    def and2(self, a: str, b: str) -> str:
        """2-input AND."""
        return self.gate(GateOp.AND, [a, b])

    def or2(self, a: str, b: str) -> str:
        """2-input OR."""
        return self.gate(GateOp.OR, [a, b])

    def nand2(self, a: str, b: str) -> str:
        """2-input NAND."""
        return self.gate(GateOp.NAND, [a, b])

    def nor2(self, a: str, b: str) -> str:
        """2-input NOR."""
        return self.gate(GateOp.NOR, [a, b])

    def xor2(self, a: str, b: str) -> str:
        """2-input XOR."""
        return self.gate(GateOp.XOR, [a, b])

    def xnor2(self, a: str, b: str) -> str:
        """2-input XNOR."""
        return self.gate(GateOp.XNOR, [a, b])

    def mux(self, select: str, when0: str, when1: str) -> str:
        """2:1 multiplexer: ``select ? when1 : when0``."""
        return self.gate(GateOp.MUX, [select, when0, when1])

    # ------------------------------------------------------------------
    # Balanced trees of associative operators
    # ------------------------------------------------------------------
    def _tree(self, op: GateOp, nets: Sequence[str]) -> str:
        if not nets:
            raise NetlistError(f"{op.value} tree needs at least one operand")
        layer = list(nets)
        while len(layer) > 1:
            next_layer = []
            for i in range(0, len(layer) - 1, 2):
                next_layer.append(self.gate(op, [layer[i], layer[i + 1]]))
            if len(layer) % 2:
                next_layer.append(layer[-1])
            layer = next_layer
        return layer[0]

    def and_tree(self, nets: Sequence[str]) -> str:
        """Balanced AND of any number of nets."""
        return self._tree(GateOp.AND, nets)

    def or_tree(self, nets: Sequence[str]) -> str:
        """Balanced OR of any number of nets."""
        return self._tree(GateOp.OR, nets)

    def xor_tree(self, nets: Sequence[str]) -> str:
        """Balanced XOR (parity) of any number of nets."""
        return self._tree(GateOp.XOR, nets)

    # ------------------------------------------------------------------
    # SOP decomposition (used by the BLIF front-end)
    # ------------------------------------------------------------------
    def sop(self, inputs: Sequence[str], cubes: Sequence[str], invert: bool = False) -> str:
        """Instantiate a sum-of-products over ``inputs``.

        ``cubes`` are BLIF-style rows (characters ``0``, ``1``, ``-`` per
        input); the result is OR of ANDs, optionally inverted (for
        covers of the OFF-set).  An empty cube list yields constant 0.
        """
        if not cubes:
            result = self.const(False)
            return self.inv(result) if invert else result
        products = []
        for cube in cubes:
            if len(cube) != len(inputs):
                raise NetlistError(
                    f"cube {cube!r} width {len(cube)} != {len(inputs)} inputs"
                )
            literals = []
            for net, char in zip(inputs, cube):
                if char == "1":
                    literals.append(net)
                elif char == "0":
                    literals.append(self.inv(net))
                elif char != "-":
                    raise NetlistError(f"invalid cube character {char!r}")
            if not literals:
                # A cube with no literals covers everything: constant 1.
                result = self.const(True)
                return self.inv(result) if invert else result
            products.append(self.and_tree(literals))
        result = self.or_tree(products)
        return self.inv(result) if invert else result

    # ------------------------------------------------------------------
    def build(self) -> Netlist:
        """Validate and return the constructed netlist."""
        self.netlist.topological_order()  # raises on cycles / undriven nets
        return self.netlist
