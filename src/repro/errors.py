"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DDError(ReproError):
    """Base class for decision-diagram errors."""


class VariableOrderError(DDError):
    """A variable index or rename mapping violates the manager's order."""


class NotBooleanError(DDError):
    """An operation that requires a 0/1-valued diagram got a general ADD."""


class BackendError(DDError):
    """An evaluation backend was requested that does not exist, or an
    explicitly forced backend cannot evaluate the given diagram."""


class NetlistError(ReproError):
    """Base class for netlist construction / validation errors."""


class ParseError(ReproError):
    """A netlist description (BLIF / structural Verilog) could not be parsed."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class SimulationError(ReproError):
    """A simulation was configured or invoked inconsistently."""


class ModelError(ReproError):
    """A power model was built or evaluated inconsistently."""


class BuildTimeoutError(ModelError):
    """A supervised parallel build exceeded its per-job wall-time budget."""


class WorkerCrashError(ModelError):
    """A build worker process died (or could not start) before returning."""


class OverloadError(ReproError):
    """The power-query service shed this request under admission control."""


class ServeConnectionError(ReproError):
    """The power-query client lost its connection (reset, timeout, refusal)."""


class CircuitOpenError(ServeConnectionError):
    """A client short-circuited: the endpoint's circuit breaker is open.

    Subclasses :class:`ServeConnectionError` so every degrade path that
    already handles an unreachable endpoint (local-build fallback, shard
    failover) treats a tripped breaker identically — just without the
    connect timeout.
    """


class DeadlineExceededError(ServeConnectionError):
    """An end-to-end deadline expired before the call could complete."""


class CharacterizationError(ModelError):
    """A characterized model was used before fitting, or fit on bad data."""


class SequenceError(ReproError):
    """An input-sequence specification is infeasible (e.g. st > 2*min(sp,1-sp))."""


class OracleError(ReproError):
    """The differential-testing oracle was asked something it cannot answer."""


class FuzzError(ReproError):
    """The fuzzing harness was configured inconsistently or hit a bad corpus file."""


class ObsError(ReproError):
    """The telemetry subsystem was misused (instrument type clash, bad merge)."""


class FaultPlanError(ReproError):
    """A fault-injection plan is malformed (unknown site, bad trigger)."""
