"""Analytic switching-activity estimation (pattern-independent models).

The related-work class the paper positions itself against ([4, 5]):
average power from a compact description of the input statistics instead
of per-pattern evaluation.  Two estimators are provided, both assuming
independent per-bit stationary Markov inputs with parameters ``(sp, st)``:

``exact_*``
    Per-gate *exact* expectations computed symbolically: for each gate
    the BDDs of its function over the ``x_i`` and ``x_f`` input copies
    are combined into the rising indicator ``g'(x_i) g(x_f)`` and its
    expectation is evaluated under the Markov measure with one DD walk.
    No spatial-correlation error at all — the analytic ground truth for
    zero-delay average power.

``propagated_*``
    The classic cheap scheme: signal and transition probabilities are
    propagated gate by gate under the independence assumption.
    Reconvergent fanout makes it approximate; comparing it with the
    exact numbers quantifies that error per circuit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.dd.manager import DDManager
from repro.dd.ordering import TransitionSpace, fanin_dfs_input_order
from repro.errors import SimulationError
from repro.netlist.gates import GateOp
from repro.netlist.netlist import Netlist
from repro.netlist.symbolic import build_node_functions
from repro.sim.sequences import feasible_st_range


def _markov_parameters(sp: float, st: float) -> Tuple[float, float]:
    low, high = feasible_st_range(sp)
    if not low <= st <= high + 1e-12:
        raise SimulationError(f"st={st} infeasible for sp={sp}")
    p01 = st / (2.0 * (1.0 - sp)) if sp < 1.0 else 0.0
    p10 = st / (2.0 * sp) if sp > 0.0 else 0.0
    return p01, p10


# ---------------------------------------------------------------------------
# Exact symbolic estimator
# ---------------------------------------------------------------------------
def _expected_markov(
    manager: DDManager,
    node: int,
    space: TransitionSpace,
    sp: float,
    st: float,
) -> float:
    """E[f] for an ADD over the doubled space under the Markov measure."""
    p01, p10 = _markov_parameters(sp, st)
    xi_position = {space.xi(k): k for k in range(space.num_inputs)}
    memo: Dict[Tuple[int, int], float] = {}

    def walk(u: int, pending: int) -> float:
        key = (u, pending)
        hit = memo.get(key)
        if hit is not None:
            return hit
        if manager.is_terminal(u):
            result = manager.value(u)
        else:
            var = manager.top_var(u)
            lo, hi = manager.lo(u), manager.hi(u)
            if var in xi_position:
                xf_var = space.xf(xi_position[var])
                lo_pending = 0 if manager.top_var(lo) == xf_var else -1
                hi_pending = 1 if manager.top_var(hi) == xf_var else -1
                result = (1.0 - sp) * walk(lo, lo_pending) + sp * walk(
                    hi, hi_pending
                )
            else:
                if pending == 1:
                    p_one = 1.0 - p10
                elif pending == 0:
                    p_one = p01
                else:
                    p_one = sp
                result = (1.0 - p_one) * walk(lo, -1) + p_one * walk(hi, -1)
        memo[key] = result
        return result

    return walk(node, -1)


@dataclass(frozen=True)
class ActivityReport:
    """Per-net switching statistics and the resulting average power."""

    signal_probability: Dict[str, float]
    rising_probability: Dict[str, float]
    average_capacitance_fF: float


def exact_activity(netlist: Netlist, sp: float = 0.5, st: float = 0.5) -> ActivityReport:
    """Exact per-net rising probabilities and average switching capacitance.

    One symbolic pass; exact under the independent-Markov input model
    (validated against long simulations in the test suite).
    """
    order = fanin_dfs_input_order(
        netlist.outputs, netlist.fanin_map(), netlist.inputs
    )
    space = TransitionSpace(order)
    manager = space.manager
    position = {name: k for k, name in enumerate(order)}
    xi_vars = {name: space.xi(position[name]) for name in netlist.inputs}
    xf_vars = {name: space.xf(position[name]) for name in netlist.inputs}
    functions_i = build_node_functions(netlist, manager, xi_vars)
    functions_f = build_node_functions(netlist, manager, xf_vars)
    loads = netlist.load_capacitances()

    signal: Dict[str, float] = {}
    rising: Dict[str, float] = {}
    total = 0.0
    for net, node in functions_i.items():
        signal[net] = _expected_markov(manager, node, space, sp, st)
    for gate in netlist.topological_order():
        g_i = functions_i[gate.output]
        g_f = functions_f[gate.output]
        indicator = manager.bdd_and(manager.bdd_not(g_i), g_f)
        probability = _expected_markov(manager, indicator, space, sp, st)
        rising[gate.output] = probability
        total += probability * loads[gate.name]
    return ActivityReport(signal, rising, total)


# ---------------------------------------------------------------------------
# Classic propagated (independence-assumption) estimator
# ---------------------------------------------------------------------------
def _combine_gate(
    op: GateOp, probabilities: list, toggles: list
) -> Tuple[float, float]:
    """Propagate (P(out=1), P(out toggles)) through one gate.

    Inputs are treated as mutually independent and temporally Markov; the
    output toggle probability is approximated from the exact Boolean
    difference for 1- and 2-input gates and by composition for wider
    associative gates.
    """
    if op is GateOp.CONST0:
        return 0.0, 0.0
    if op is GateOp.CONST1:
        return 1.0, 0.0
    if op in (GateOp.BUF,):
        return probabilities[0], toggles[0]
    if op is GateOp.INV:
        return 1.0 - probabilities[0], toggles[0]
    if op is GateOp.MUX:
        select_p, a_p, b_p = probabilities
        select_t, a_t, b_t = toggles
        out_p = (1 - select_p) * a_p + select_p * b_p
        # Toggle if the selected data toggles, or the select toggles and
        # the two data values differ (independence approximation).
        differ = a_p * (1 - b_p) + b_p * (1 - a_p)
        out_t = (1 - select_p) * a_t + select_p * b_t + select_t * differ
        return out_p, min(1.0, out_t)
    # Associative operators: fold pairwise.
    invert = op in (GateOp.NAND, GateOp.NOR, GateOp.XNOR)
    base = {
        GateOp.AND: GateOp.AND, GateOp.NAND: GateOp.AND,
        GateOp.OR: GateOp.OR, GateOp.NOR: GateOp.OR,
        GateOp.XOR: GateOp.XOR, GateOp.XNOR: GateOp.XOR,
    }[op]
    p, t = probabilities[0], toggles[0]
    for q, u in zip(probabilities[1:], toggles[1:]):
        if base is GateOp.AND:
            # out toggles when one input toggles while the other is 1
            # (both-toggle events folded in at second order).
            new_t = t * q + u * p - t * u * (p * q + (1 - p) * (1 - q))
            p, t = p * q, min(1.0, max(0.0, new_t))
        elif base is GateOp.OR:
            new_t = t * (1 - q) + u * (1 - p) - t * u * (
                p * q + (1 - p) * (1 - q)
            )
            p, t = p + q - p * q, min(1.0, max(0.0, new_t))
        else:  # XOR: toggles when exactly one side toggles
            new_t = t * (1 - u) + u * (1 - t)
            p, t = p * (1 - q) + q * (1 - p), new_t
    if invert:
        p = 1.0 - p
    return p, t


def propagated_activity(
    netlist: Netlist, sp: float = 0.5, st: float = 0.5
) -> ActivityReport:
    """Independence-assumption activity propagation (the cheap classic).

    Exact on trees; reconvergent fanout introduces the correlation error
    this module lets you measure against :func:`exact_activity`.
    """
    _markov_parameters(sp, st)  # validates feasibility
    probability: Dict[str, float] = {net: sp for net in netlist.inputs}
    toggle: Dict[str, float] = {net: st for net in netlist.inputs}
    loads = netlist.load_capacitances()
    rising: Dict[str, float] = {}
    total = 0.0
    for gate in netlist.topological_order():
        p, t = _combine_gate(
            gate.cell.op,
            [probability[n] for n in gate.inputs],
            [toggle[n] for n in gate.inputs],
        )
        probability[gate.output] = p
        toggle[gate.output] = t
        # Stationarity: half of the toggles are rising.
        rising[gate.output] = 0.5 * t
        total += 0.5 * t * loads[gate.name]
    return ActivityReport(dict(probability), rising, total)
