"""Reference (golden-model) power computation — Eq. 1-4 of the paper.

At the zero-delay gate-level abstraction the supply energy of an input
transition is ``e(x_i, x_f) = Vdd^2 * C(x_i, x_f)`` where the switching
capacitance ``C`` sums the loads of all gates whose output *rises*
between the two stable states (Eq. 2-3).  These routines compute that
quantity exactly by simulation; the whole point of the paper is to
abstract them into a compact RTL model, and the test suite checks the
ADD model against these functions pattern by pattern.

Units: capacitances in fF, voltages in V, energies in fJ
(``1 fF * 1 V^2 = 1 fJ``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.netlist.netlist import Netlist
from repro.obs.metrics import get_metrics
from repro.obs.trace import get_tracer
from repro.sim.logic_sim import simulate

_MET = get_metrics()
_SIM_PATTERNS = _MET.counter("sim.patterns")
_SIM_TRANSITIONS = _MET.counter("sim.transitions")
_SIM_BATCHES = _MET.counter("sim.batches")
_SIM_RATE = _MET.gauge("sim.patterns_per_sec", kind="last")

#: Default supply voltage (V); a typical 1998-era value.  Only scales the
#: energy axis — all the paper's metrics are relative errors.
DEFAULT_VDD = 3.3


def _record_sim(patterns: int, transitions: int, started: float) -> None:
    """Account one golden-model batch to the ``sim.*`` instruments."""
    _SIM_BATCHES.inc()
    _SIM_PATTERNS.inc(patterns)
    _SIM_TRANSITIONS.inc(transitions)
    elapsed = time.perf_counter() - started
    if elapsed > 0.0:
        _SIM_RATE.set(patterns / elapsed)


def gate_load_vector(netlist: Netlist) -> np.ndarray:
    """Load capacitances (fF) ordered like :meth:`Netlist.topological_order`."""
    loads = netlist.load_capacitances()
    return np.array(
        [loads[g.name] for g in netlist.topological_order()], dtype=float
    )


def switching_capacitance(
    netlist: Netlist, initial: Sequence[int], final: Sequence[int]
) -> float:
    """Exact ``C(x_i, x_f)`` in fF for one transition (Eq. 2-4)."""
    patterns = np.array([initial, final], dtype=bool)
    result = simulate(netlist, patterns).gate_output_matrix()
    rising = ~result[0] & result[1]
    return float(rising @ gate_load_vector(netlist))


def pair_switching_capacitances(
    netlist: Netlist, initial: np.ndarray, final: np.ndarray
) -> np.ndarray:
    """Exact ``C`` for a batch of independent transitions.

    ``initial`` and ``final`` are ``(P, n)`` matrices; returns ``(P,)``
    capacitances in fF.
    """
    initial = np.atleast_2d(np.asarray(initial, dtype=bool))
    final = np.atleast_2d(np.asarray(final, dtype=bool))
    if initial.shape != final.shape:
        raise SimulationError(
            f"pattern shapes differ: {initial.shape} vs {final.shape}"
        )
    started = time.perf_counter()
    with get_tracer().span(
        "sim.pairs", netlist=netlist.name, pairs=initial.shape[0]
    ):
        before = simulate(netlist, initial).gate_output_matrix()
        after = simulate(netlist, final).gate_output_matrix()
        rising = ~before & after
        result = rising @ gate_load_vector(netlist)
    _record_sim(2 * initial.shape[0], initial.shape[0], started)
    return result


def sequence_switching_capacitances(
    netlist: Netlist, sequence: np.ndarray
) -> np.ndarray:
    """Per-cycle ``C`` along a vector sequence.

    For a sequence of ``P`` vectors returns ``P - 1`` capacitances, one per
    consecutive transition.  The whole sequence is simulated in one batch.
    """
    sequence = np.asarray(sequence, dtype=bool)
    if sequence.ndim != 2 or sequence.shape[0] < 2:
        raise SimulationError("sequence must hold at least two vectors")
    started = time.perf_counter()
    with get_tracer().span(
        "sim.sequence", netlist=netlist.name, vectors=sequence.shape[0]
    ):
        waves = simulate(netlist, sequence).gate_output_matrix()
        rising = ~waves[:-1] & waves[1:]
        result = rising @ gate_load_vector(netlist)
    _record_sim(sequence.shape[0], sequence.shape[0] - 1, started)
    return result


def energy_fJ(capacitance_fF: float | np.ndarray, vdd: float = DEFAULT_VDD) -> float | np.ndarray:
    """Eq. 1: supply energy in fJ for a switching capacitance in fF."""
    return capacitance_fF * vdd * vdd


@dataclass(frozen=True)
class SequencePowerReport:
    """Power summary of one simulated sequence (the per-run ground truth)."""

    average_capacitance_fF: float
    peak_capacitance_fF: float
    total_energy_fJ: float
    average_power_uW: float
    peak_power_uW: float
    num_transitions: int

    @staticmethod
    def from_capacitances(
        capacitances: np.ndarray,
        vdd: float = DEFAULT_VDD,
        cycle_time_ns: float = 10.0,
    ) -> "SequencePowerReport":
        """Summarise per-cycle switching capacitances.

        ``P = E / T``: with energies in fJ and the cycle time in ns, power
        comes out in uW.
        """
        if len(capacitances) == 0:
            raise SimulationError("no transitions to summarise")
        energies = energy_fJ(capacitances, vdd)
        return SequencePowerReport(
            average_capacitance_fF=float(np.mean(capacitances)),
            peak_capacitance_fF=float(np.max(capacitances)),
            total_energy_fJ=float(np.sum(energies)),
            average_power_uW=float(np.mean(energies)) / cycle_time_ns,
            peak_power_uW=float(np.max(energies)) / cycle_time_ns,
            num_transitions=len(capacitances),
        )


def simulate_sequence_power(
    netlist: Netlist,
    sequence: np.ndarray,
    vdd: float = DEFAULT_VDD,
    cycle_time_ns: float = 10.0,
) -> SequencePowerReport:
    """Golden-model power report for a vector sequence."""
    capacitances = sequence_switching_capacitances(netlist, sequence)
    return SequencePowerReport.from_capacitances(capacitances, vdd, cycle_time_ns)


def exhaustive_max_capacitance(netlist: Netlist) -> Tuple[float, np.ndarray, np.ndarray]:
    """Exact worst-case ``C`` by enumerating all transition pairs.

    The exhaustive search the paper calls "unfeasible even for small
    circuits" — provided for circuits small enough (n <= 8) to verify
    that the ADD upper bound's global maximum is exact.

    Returns ``(C_max, x_i, x_f)`` for one maximising pair.
    """
    n = netlist.num_inputs
    if n > 8:
        raise SimulationError(
            f"exhaustive search over {n} inputs is 4**{n} pairs; refusing above 8"
        )
    from repro.sim.sequences import all_patterns

    patterns = all_patterns(n)
    span = patterns.shape[0]
    waves = simulate(netlist, patterns).gate_output_matrix()
    loads = gate_load_vector(netlist)
    # totals[i, j] = sum_g (1 - waves[i,g]) * waves[j,g] * loads[g]
    #             = (waves @ loads)[j] - (waves*loads @ waves.T)[i, j],
    # one BLAS matmul instead of a Python loop over initial patterns.
    rising_mass = waves @ loads
    cross = (waves * loads) @ waves.T
    totals = rising_mass[None, :] - cross
    i, j = divmod(int(np.argmax(totals)), span)
    return float(totals[i, j]), patterns[i], patterns[j]
