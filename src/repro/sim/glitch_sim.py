"""Event-driven gate-level simulation with glitch accounting.

The paper deliberately restricts its golden model to *zero-delay*
semantics, classifying glitches (spurious transitions caused by unequal
path delays) as a parasitic phenomenon that characterization may add back
on top of the analytical structural model.  This simulator provides that
reference: a transport-delay event-driven simulation whose extra rising
transitions, relative to the zero-delay count, measure the glitch power
the structural model cannot see.

Used by the hybrid-model experiment (E8 in DESIGN.md): the analytical ADD
model captures the structural component, a small characterized residual
captures the glitch component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.netlist.gates import eval_python
from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class TransitionTrace:
    """Outcome of one event-driven input transition.

    Attributes
    ----------
    switching_capacitance_fF:
        Total capacitance charged by *all* rising output transitions,
        glitches included.
    zero_delay_capacitance_fF:
        The structural component: capacitance the zero-delay golden model
        would report for the same transition (Eq. 2-4).
    num_output_transitions:
        Total gate-output value changes observed.
    num_settled_transitions:
        Output changes that survive at settling (initial != final value).
    """

    switching_capacitance_fF: float
    zero_delay_capacitance_fF: float
    num_output_transitions: int
    num_settled_transitions: int

    @property
    def glitch_capacitance_fF(self) -> float:
        """Parasitic (glitch) component of the switching capacitance."""
        return self.switching_capacitance_fF - self.zero_delay_capacitance_fF

    @property
    def num_glitch_transitions(self) -> int:
        """Transitions that cancel out before settling."""
        return self.num_output_transitions - self.num_settled_transitions


def _gate_delays(netlist: Netlist, delays: Mapping[str, int] | None) -> Dict[str, int]:
    if delays is None:
        return {gate.name: 1 for gate in netlist.gates}
    resolved = {}
    for gate in netlist.gates:
        delay = int(delays.get(gate.name, 1))
        if delay < 1:
            raise SimulationError(
                f"gate {gate.name}: delay must be >= 1, got {delay}"
            )
        resolved[gate.name] = delay
    return resolved


def simulate_transition(
    netlist: Netlist,
    initial: Sequence[int],
    final: Sequence[int],
    delays: Mapping[str, int] | None = None,
) -> TransitionTrace:
    """Event-driven simulation of one ``x_i -> x_f`` input transition.

    The circuit is first settled at ``x_i`` (zero-delay), then the inputs
    change to ``x_f`` at time 0 and events propagate with per-gate
    transport delays (default: 1 unit each).  Every rising gate-output
    edge charges that gate's load capacitance.
    """
    if len(initial) != netlist.num_inputs or len(final) != netlist.num_inputs:
        raise SimulationError(
            f"patterns must have {netlist.num_inputs} bits"
        )
    gate_delay = _gate_delays(netlist, delays)
    loads = netlist.load_capacitances()
    order = netlist.topological_order()
    fanout: Dict[str, list] = {}
    for gate in order:
        for net in set(gate.inputs):
            fanout.setdefault(net, []).append(gate)

    values = netlist.evaluate(list(initial))
    settled_final = netlist.evaluate(list(final))

    # Structural reference (Eq. 2-3): rising settled outputs.
    zero_delay_cap = sum(
        loads[g.name]
        for g in order
        if not values[g.output] and settled_final[g.output]
    )
    settled_count = sum(
        1 for g in order if values[g.output] != settled_final[g.output]
    )

    # Schedule the primary-input changes at time 0.
    pending: Dict[int, Dict[str, int]] = {}
    for name, bit in zip(netlist.inputs, final):
        bit = int(bool(bit))
        if values[name] != bit:
            pending.setdefault(0, {})[name] = bit
    # preview[net] = value the net will hold once its last scheduled event
    # fires; used to suppress scheduling no-change events.
    preview = {net: value for net, value in values.items()}

    total_cap = 0.0
    total_transitions = 0
    guard = 0
    while pending:
        guard += 1
        if guard > 4 * len(order) * max(gate_delay.values(), default=1) + 16:
            raise SimulationError(
                "event simulation did not settle (combinational feedback?)"
            )
        now = min(pending)
        changes = pending.pop(now)
        touched_gates = []
        for net, value in changes.items():
            if values[net] == value:
                continue
            driver = None if netlist.is_primary_input(net) else netlist.driver(net)
            if driver is not None:
                total_transitions += 1
                if not values[net] and value:
                    total_cap += loads[driver.name]
            values[net] = value
            touched_gates.extend(fanout.get(net, ()))
        seen = set()
        for gate in touched_gates:
            if gate.name in seen:
                continue
            seen.add(gate.name)
            new_value = eval_python(
                gate.cell.op, [values[net] for net in gate.inputs]
            )
            if new_value != preview[gate.output]:
                fire = now + gate_delay[gate.name]
                pending.setdefault(fire, {})[gate.output] = new_value
                preview[gate.output] = new_value

    return TransitionTrace(
        switching_capacitance_fF=total_cap,
        zero_delay_capacitance_fF=float(zero_delay_cap),
        num_output_transitions=total_transitions,
        num_settled_transitions=settled_count,
    )


def sequence_glitch_capacitances(
    netlist: Netlist,
    sequence: np.ndarray,
    delays: Mapping[str, int] | None = None,
) -> np.ndarray:
    """Per-cycle *total* (structural + glitch) switching capacitance.

    Returns an array of length ``len(sequence) - 1``; element ``t`` is the
    event-driven capacitance of the transition from vector ``t`` to
    ``t + 1``.
    """
    sequence = np.asarray(sequence, dtype=bool)
    if sequence.ndim != 2 or sequence.shape[0] < 2:
        raise SimulationError("sequence must hold at least two vectors")
    result = np.empty(sequence.shape[0] - 1, dtype=float)
    for t in range(sequence.shape[0] - 1):
        trace = simulate_transition(
            netlist, sequence[t].tolist(), sequence[t + 1].tolist(), delays
        )
        result[t] = trace.switching_capacitance_fF
    return result
