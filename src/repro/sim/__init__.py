"""Simulation layer: logic, power and glitch simulators plus sequence generators.

- :mod:`~repro.sim.logic_sim` — numpy batch zero-delay logic simulation;
- :mod:`~repro.sim.power_sim` — golden-model switching capacitance /
  energy per Eq. 1-4 (the reference every model is measured against);
- :mod:`~repro.sim.glitch_sim` — event-driven transport-delay simulation
  quantifying the parasitic (glitch) component;
- :mod:`~repro.sim.sequences` — random input sequences with controlled
  signal probability ``sp`` and transition probability ``st``.
"""

from repro.sim.activity import (
    ActivityReport,
    exact_activity,
    propagated_activity,
)
from repro.sim.glitch_sim import (
    TransitionTrace,
    sequence_glitch_capacitances,
    simulate_transition,
)
from repro.sim.logic_sim import (
    SimulationResult,
    simulate,
    simulate_outputs,
    simulate_sequence_gate_outputs,
)
from repro.sim.power_sim import (
    DEFAULT_VDD,
    SequencePowerReport,
    energy_fJ,
    exhaustive_max_capacitance,
    gate_load_vector,
    pair_switching_capacitances,
    sequence_switching_capacitances,
    simulate_sequence_power,
    switching_capacitance,
)
from repro.sim.sequences import (
    SequenceStats,
    address_burst_sequence,
    all_patterns,
    all_transition_pairs,
    counter_sequence,
    exhaustive_pairs,
    feasible_st_range,
    gray_sequence,
    markov_sequence,
    measure,
    onehot_rotation_sequence,
    uniform_pairs,
)

__all__ = [
    "simulate",
    "simulate_outputs",
    "simulate_sequence_gate_outputs",
    "SimulationResult",
    "switching_capacitance",
    "pair_switching_capacitances",
    "sequence_switching_capacitances",
    "simulate_sequence_power",
    "exhaustive_max_capacitance",
    "gate_load_vector",
    "energy_fJ",
    "SequencePowerReport",
    "DEFAULT_VDD",
    "simulate_transition",
    "sequence_glitch_capacitances",
    "TransitionTrace",
    "markov_sequence",
    "uniform_pairs",
    "exhaustive_pairs",
    "all_transition_pairs",
    "all_patterns",
    "gray_sequence",
    "counter_sequence",
    "address_burst_sequence",
    "onehot_rotation_sequence",
    "measure",
    "feasible_st_range",
    "SequenceStats",
    "ActivityReport",
    "exact_activity",
    "propagated_activity",
]
