"""Zero-delay batch logic simulation.

Evaluates every net of a netlist for a whole batch of input patterns at
once using numpy boolean vectors — one topological sweep, one vector
operation per gate.  This is the reference ("gate-level") simulator that
the paper's characterized baselines are fitted against and that the
power experiments compare to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.netlist.gates import eval_numpy
from repro.netlist.netlist import Netlist


@dataclass
class SimulationResult:
    """Net waveforms for a batch of patterns.

    ``values[name]`` is a boolean array over patterns for net ``name``;
    available for all primary inputs and all gate outputs.
    """

    netlist: Netlist
    values: Dict[str, np.ndarray]
    num_patterns: int

    def output_matrix(self) -> np.ndarray:
        """Primary outputs as a ``(num_patterns, num_outputs)`` matrix."""
        return np.stack(
            [self.values[net] for net in self.netlist.outputs], axis=1
        )

    def gate_output_matrix(self) -> np.ndarray:
        """Gate outputs as a ``(num_patterns, num_gates)`` matrix.

        Columns follow :meth:`Netlist.topological_order`.
        """
        order = self.netlist.topological_order()
        return np.stack([self.values[g.output] for g in order], axis=1)


def _pattern_matrix(netlist: Netlist, patterns: np.ndarray) -> np.ndarray:
    array = np.asarray(patterns)
    if array.ndim == 1:
        array = array[None, :]
    if array.ndim != 2 or array.shape[1] != netlist.num_inputs:
        raise SimulationError(
            f"pattern matrix must be (P, {netlist.num_inputs}), got {array.shape}"
        )
    return array.astype(bool)


def simulate(netlist: Netlist, patterns: np.ndarray) -> SimulationResult:
    """Simulate a batch of input patterns.

    ``patterns`` is a ``(P, n)`` 0/1 or boolean matrix with columns in
    ``netlist.inputs`` order.  Returns values for every net.
    """
    matrix = _pattern_matrix(netlist, patterns)
    num_patterns = matrix.shape[0]
    values: Dict[str, np.ndarray] = {
        name: matrix[:, k] for k, name in enumerate(netlist.inputs)
    }
    for gate in netlist.topological_order():
        operands = [values[net] for net in gate.inputs]
        values[gate.output] = eval_numpy(gate.cell.op, operands, num_patterns)
    return SimulationResult(netlist, values, num_patterns)


def simulate_outputs(netlist: Netlist, patterns: np.ndarray) -> np.ndarray:
    """Primary-output matrix for a batch of patterns."""
    return simulate(netlist, patterns).output_matrix()


def simulate_sequence_gate_outputs(
    netlist: Netlist, sequence: np.ndarray
) -> np.ndarray:
    """Gate-output waveforms for a vector sequence (helper for power sim)."""
    return simulate(netlist, sequence).gate_output_matrix()
