"""Input-sequence generators with controlled statistics.

The paper's evaluation protocol sweeps the *average signal probability*
``sp`` (fraction of time a bit is 1) and the *average transition
probability* ``st`` (fraction of cycles a bit toggles) of random input
sequences.  :func:`markov_sequence` realises a pair ``(sp, st)`` exactly in
expectation with one stationary two-state Markov chain per input bit:

- ``P(0 -> 1) = st / (2 (1 - sp))``
- ``P(1 -> 0) = st / (2 sp)``

which gives stationary probability ``sp`` and toggle rate ``st`` per step.
Feasibility requires ``st <= 2 * min(sp, 1 - sp)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.errors import SequenceError


def feasible_st_range(sp: float) -> Tuple[float, float]:
    """Inclusive range of transition probabilities achievable at ``sp``."""
    if not 0.0 <= sp <= 1.0:
        raise SequenceError(f"signal probability {sp} outside [0, 1]")
    return (0.0, 2.0 * min(sp, 1.0 - sp))


def markov_sequence(
    num_bits: int,
    length: int,
    sp: float = 0.5,
    st: float = 0.5,
    seed: int | None = None,
) -> np.ndarray:
    """Random sequence with given per-bit signal/transition probabilities.

    Returns a boolean array of shape ``(length, num_bits)``.  Bits are
    mutually independent; each follows a stationary Markov chain with
    marginal ``P(bit = 1) = sp`` and ``P(toggle) = st``.
    """
    if num_bits <= 0:
        raise SequenceError(f"num_bits must be positive, got {num_bits}")
    if length <= 0:
        raise SequenceError(f"length must be positive, got {length}")
    low, high = feasible_st_range(sp)
    if not low <= st <= high + 1e-12:
        raise SequenceError(
            f"st={st} infeasible for sp={sp}; feasible range is [{low}, {high:.4g}]"
        )
    rng = np.random.default_rng(seed)
    sequence = np.empty((length, num_bits), dtype=bool)
    sequence[0] = rng.random(num_bits) < sp
    if st == 0.0:
        sequence[1:] = sequence[0]
        return sequence
    p01 = st / (2.0 * (1.0 - sp)) if sp < 1.0 else 0.0
    p10 = st / (2.0 * sp) if sp > 0.0 else 0.0
    draws = rng.random((length - 1, num_bits))
    for t in range(1, length):
        previous = sequence[t - 1]
        toggle = np.where(previous, draws[t - 1] < p10, draws[t - 1] < p01)
        sequence[t] = previous ^ toggle
    return sequence


def uniform_pairs(
    num_bits: int, count: int, seed: int | None = None
) -> Tuple[np.ndarray, np.ndarray]:
    """``count`` independent uniformly random ``(x_i, x_f)`` pattern pairs.

    Returns two boolean arrays of shape ``(count, num_bits)``.
    """
    if num_bits <= 0 or count <= 0:
        raise SequenceError("num_bits and count must be positive")
    rng = np.random.default_rng(seed)
    initial = rng.random((count, num_bits)) < 0.5
    final = rng.random((count, num_bits)) < 0.5
    return initial, final


def exhaustive_pairs(num_bits: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """All ``4**num_bits`` transition pairs, for exact checks on tiny circuits."""
    if num_bits > 10:
        raise SequenceError(
            f"exhaustive enumeration of {num_bits} bits is {4 ** num_bits} pairs; "
            "refusing above 10 bits"
        )
    span = 2 ** num_bits
    for i in range(span):
        bits_i = np.array(
            [(i >> (num_bits - 1 - k)) & 1 for k in range(num_bits)], dtype=bool
        )
        for f in range(span):
            bits_f = np.array(
                [(f >> (num_bits - 1 - k)) & 1 for k in range(num_bits)], dtype=bool
            )
            yield bits_i, bits_f


def all_transition_pairs(num_bits: int) -> Tuple[np.ndarray, np.ndarray]:
    """All ``4**num_bits`` transition pairs as two ``(4**n, n)`` matrices.

    Vectorised companion to :func:`exhaustive_pairs` for batch
    evaluation: row ``i * 2**n + f`` pairs pattern index ``i`` with
    pattern index ``f``, where bit ``k`` of a pattern index is input
    ``k`` (LSB-first) — the same row-major layout as the flattened
    capacitance matrix of :func:`repro.testing.oracle.oracle_capacitance_matrix`.
    """
    if num_bits > 12:
        raise SequenceError(
            f"all_transition_pairs over {num_bits} bits is {4 ** num_bits} "
            "rows; refusing above 12 bits"
        )
    span = 2 ** num_bits
    patterns = (
        (np.arange(span)[:, None] >> np.arange(num_bits)[None, :]) & 1
    ).astype(bool)
    return (
        patterns[np.repeat(np.arange(span), span)],
        patterns[np.tile(np.arange(span), span)],
    )


def all_patterns(num_bits: int) -> np.ndarray:
    """All ``2**num_bits`` patterns as a boolean matrix (MSB-first rows)."""
    if num_bits > 20:
        raise SequenceError(f"refusing to enumerate 2**{num_bits} patterns")
    span = 2 ** num_bits
    values = np.arange(span, dtype=np.int64)
    shifts = np.arange(num_bits - 1, -1, -1)
    return ((values[:, None] >> shifts[None, :]) & 1).astype(bool)


def gray_sequence(num_bits: int, length: int) -> np.ndarray:
    """Deterministic sequence following a Gray-code walk (one toggle/step).

    Useful as a minimal-activity stress pattern (``st = 1/num_bits``).
    """
    if num_bits <= 0 or length <= 0:
        raise SequenceError("num_bits and length must be positive")
    sequence = np.zeros((length, num_bits), dtype=bool)
    for t in range(1, length):
        gray = t ^ (t >> 1)
        for k in range(num_bits):
            sequence[t, num_bits - 1 - k] = bool((gray >> k) & 1)
    return sequence


def counter_sequence(
    num_bits: int, length: int, start: int = 0, stride: int = 1
) -> np.ndarray:
    """Binary counter stream (LSB in column ``num_bits - 1``).

    Real datapaths see counters constantly; their bit activities are
    wildly non-uniform (LSB toggles every cycle, MSB almost never) and
    temporally correlated — exactly the statistics mismatch that breaks
    characterized models (see the workload experiment E10).
    """
    if num_bits <= 0 or length <= 0:
        raise SequenceError("num_bits and length must be positive")
    sequence = np.zeros((length, num_bits), dtype=bool)
    value = start
    mask = (1 << num_bits) - 1
    for t in range(length):
        current = value & mask
        for k in range(num_bits):
            sequence[t, num_bits - 1 - k] = bool((current >> k) & 1)
        value += stride
    return sequence


def address_burst_sequence(
    num_bits: int,
    length: int,
    burst_length: int = 8,
    seed: int | None = None,
) -> np.ndarray:
    """Memory-address-style stream: random bases, sequential bursts.

    Each burst picks a uniformly random base address and then increments
    it for ``burst_length`` cycles — high spatial locality with occasional
    large jumps, like cache-line fills.
    """
    if num_bits <= 0 or length <= 0:
        raise SequenceError("num_bits and length must be positive")
    if burst_length < 1:
        raise SequenceError("burst_length must be >= 1")
    rng = np.random.default_rng(seed)
    sequence = np.zeros((length, num_bits), dtype=bool)
    mask = (1 << num_bits) - 1
    value = 0
    for t in range(length):
        if t % burst_length == 0:
            value = int(rng.integers(0, mask + 1))
        else:
            value += 1
        current = value & mask
        for k in range(num_bits):
            sequence[t, num_bits - 1 - k] = bool((current >> k) & 1)
    return sequence


def onehot_rotation_sequence(num_bits: int, length: int) -> np.ndarray:
    """Rotating one-hot token (control-FSM style): two toggles per cycle."""
    if num_bits <= 0 or length <= 0:
        raise SequenceError("num_bits and length must be positive")
    sequence = np.zeros((length, num_bits), dtype=bool)
    for t in range(length):
        sequence[t, t % num_bits] = True
    return sequence


@dataclass(frozen=True)
class SequenceStats:
    """Empirical statistics of a generated sequence."""

    signal_probability: float
    transition_probability: float
    length: int
    num_bits: int


def measure(sequence: np.ndarray) -> SequenceStats:
    """Empirical ``(sp, st)`` of a sequence (sanity check for generators)."""
    if sequence.ndim != 2:
        raise SequenceError("sequence must be a (length, num_bits) array")
    length, num_bits = sequence.shape
    sp = float(sequence.mean())
    if length < 2:
        st = 0.0
    else:
        st = float((sequence[1:] ^ sequence[:-1]).mean())
    return SequenceStats(sp, st, length, num_bits)
