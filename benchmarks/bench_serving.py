"""E11 — serving throughput: micro-batching vs per-request evaluation.

Two questions, both about the operational path added in
``src/repro/serve``:

1. **Micro-batching payoff.**  64 concurrent clients stream single
   ``evaluate`` requests at one server; the batching server coalesces
   concurrent requests per model into single compiled-kernel calls,
   the unbatched server (``batching=False``) answers one by one.  The
   acceptance bar is >= 3x requests/second for the batched server on
   the 16-input parity macro.
2. **ModelStore warm-start.**  Building parity's ADD model cold vs
   loading it from a warm content-addressed store; the warm path must
   eliminate the rebuild (it is a disk read + deserialise).
3. **Sharded scale-out.**  The same load against a 3-shard cluster
   (forked workers + shard-aware clients) vs one server.  The >= 2x
   aggregate-req/s bar only applies on machines with >= 4 cores: the
   shards are separate *processes*, so on a single-core container
   they time-slice one CPU and the row records the honest (flat)
   number together with ``cpu_count``.

Artifacts:

- ``BENCH_serving.json`` at the repo root (full runs only), schema
  ``{bench, macro, clients, serving: {batched, unbatched, speedup},
  cluster: {shards, replication, cpu_count, single_shard, three_shards,
  speedup}, store: {cold_build_s, warm_load_s, speedup}}``;
- ``benchmarks/results/serving.txt``, the human-readable table.

Run directly::

    PYTHONPATH=src python benchmarks/bench_serving.py

``REPRO_BENCH_QUICK=1`` shrinks the client count / request volume and
leaves the checked-in JSON untouched.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time

import numpy as np

from _common import QUICK, write_result

from repro.circuits import load_circuit
from repro.models import build_add_model
from repro.obs.metrics import get_metrics
from repro.serve import (
    Cluster,
    ClusterConfig,
    ModelStore,
    ServerConfig,
    generate_cluster_load,
    generate_load,
    start_in_thread,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_serving.json")

MACRO = "parity"  # 16 inputs — the acceptance macro

CLIENTS = 16 if QUICK else 64
REQUESTS_PER_CLIENT = 10 if QUICK else 60

#: Tuned batching window: measured best on parity (small rows, fast
#: kernel), where a short wait beats a deep queue.
BATCHED = ServerConfig(max_batch=64, max_wait_ms=0.5)
UNBATCHED = ServerConfig(batching=False)


def latency_anatomy_ms(snapshot):
    """p50/p95/p99 (ms) of each request segment from a metrics snapshot.

    The server decomposes every request's residence time into queue
    wait, batch wait, kernel, and serialize segments
    (``serve.latency.*_seconds`` histograms); this is the per-request
    latency anatomy the observability layer exports, folded into the
    bench artifact so regressions in *where the time goes* are visible,
    not just regressions in the total.
    """
    anatomy = {}
    for segment in ("queue_wait", "batch_wait", "kernel", "serialize"):
        state = snapshot.get(f"serve.latency.{segment}_seconds")
        if not state or not state.get("count"):
            continue
        anatomy[segment] = {
            quantile: round(state[quantile] * 1e3, 4)
            for quantile in ("p50", "p95", "p99")
            if state.get(quantile) is not None
        }
    return anatomy


def measure_serving(model, transitions):
    """req/s + latency for the batched and unbatched server, same load."""
    out = {}
    for label, config in (("batched", BATCHED), ("unbatched", UNBATCHED)):
        # The server records its latency anatomy in the process-global
        # registry; zero it so each label's histograms cover exactly its
        # own measured wave (warmup included — same config, same shape).
        get_metrics().reset()
        handle = start_in_thread({MACRO: model}, config)
        try:
            # One warmup wave, then the measured wave.
            generate_load(
                handle.host, handle.port, MACRO, transitions,
                clients=min(8, CLIENTS), requests_per_client=5,
            )
            report = generate_load(
                handle.host, handle.port, MACRO, transitions,
                clients=CLIENTS, requests_per_client=REQUESTS_PER_CLIENT,
            )
            snapshot = get_metrics().snapshot()
        finally:
            handle.stop()
        if report.errors:
            raise AssertionError(
                f"{label} run had {report.errors} errors out of "
                f"{report.requests} requests"
            )
        out[label] = report.to_dict()
        out[label]["latency_anatomy_ms"] = latency_anatomy_ms(snapshot)
    out["speedup"] = round(
        out["batched"]["requests_per_sec"]
        / out["unbatched"]["requests_per_sec"],
        2,
    )
    return out


def measure_cluster(model, transitions):
    """Aggregate req/s: one shard vs a 3-shard replicated cluster."""
    shards = 3
    out = {"shards": shards, "replication": 2, "cpu_count": os.cpu_count()}
    for label, workers in (("single_shard", 1), ("three_shards", shards)):
        cluster = Cluster(
            {MACRO: model},
            ClusterConfig(
                workers=workers,
                replication=min(2, workers),
                server=BATCHED,
            ),
        ).start()
        try:
            generate_cluster_load(
                cluster.host, cluster.router_port, MACRO, transitions,
                clients=min(8, CLIENTS), requests_per_client=5,
            )
            report = generate_cluster_load(
                cluster.host, cluster.router_port, MACRO, transitions,
                clients=CLIENTS, requests_per_client=REQUESTS_PER_CLIENT,
            )
        finally:
            cluster.stop()
        if report.errors:
            raise AssertionError(
                f"{label} cluster run had {report.errors} errors out of "
                f"{report.requests} requests"
            )
        out[label] = report.to_dict()
    out["speedup"] = round(
        out["three_shards"]["requests_per_sec"]
        / out["single_shard"]["requests_per_sec"],
        2,
    )
    return out


def measure_store(netlist):
    """Cold build vs warm load through a throwaway ModelStore."""
    root = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        start = time.perf_counter()
        ModelStore(root).get_or_build(netlist)
        cold = time.perf_counter() - start
        # A fresh store instance on the same directory: disk hit, no build.
        start = time.perf_counter()
        ModelStore(root).get_or_build(netlist)
        warm = time.perf_counter() - start
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "cold_build_s": round(cold, 4),
        "warm_load_s": round(warm, 4),
        "speedup": round(cold / warm, 1),
    }


def format_table(serving, cluster, store) -> str:
    lines = [
        f"serving throughput — {MACRO}, {CLIENTS} concurrent clients",
        f"{'mode':<12}{'req/s':>10}{'p50 ms':>9}{'p99 ms':>9}",
    ]
    for label in ("batched", "unbatched"):
        row = serving[label]
        lines.append(
            f"{label:<12}{row['requests_per_sec']:>10.0f}"
            f"{row['latency_p50_ms']:>9.2f}{row['latency_p99_ms']:>9.2f}"
        )
        anatomy = row.get("latency_anatomy_ms") or {}
        if anatomy:
            segments = "  ".join(
                f"{segment} {values.get('p50', 0.0):.3f}/"
                f"{values.get('p99', 0.0):.3f}"
                for segment, values in anatomy.items()
            )
            lines.append(f"{'':<12}anatomy p50/p99 ms: {segments}")
    lines.append(f"micro-batching speedup: {serving['speedup']:.2f}x")
    lines.append("")
    lines.append(
        f"sharded cluster — {cluster['shards']} shards, "
        f"replication {cluster['replication']}, "
        f"{cluster['cpu_count']} cpu(s)"
    )
    for label in ("single_shard", "three_shards"):
        row = cluster[label]
        lines.append(
            f"{label:<14}{row['requests_per_sec']:>10.0f}"
            f"{row['latency_p50_ms']:>9.2f}{row['latency_p99_ms']:>9.2f}"
        )
    lines.append(f"3-shard aggregate speedup: {cluster['speedup']:.2f}x")
    lines.append("")
    lines.append(
        f"model store — cold build {store['cold_build_s']:.3f}s, "
        f"warm load {store['warm_load_s']:.4f}s "
        f"({store['speedup']:.0f}x)"
    )
    return "\n".join(lines)


def main() -> None:
    netlist = load_circuit(MACRO)
    model = build_add_model(netlist)
    rng = np.random.default_rng(23)
    transitions = [
        (rng.random(netlist.num_inputs) < 0.5,
         rng.random(netlist.num_inputs) < 0.5)
        for _ in range(32)
    ]
    serving = measure_serving(model, transitions)
    cluster = measure_cluster(model, transitions)
    store = measure_store(netlist)
    table = format_table(serving, cluster, store)
    print(table)
    path = write_result("serving", table)
    print(f"\nwrote {path}")
    if not QUICK:
        payload = {
            "bench": "serving",
            "macro": MACRO,
            "num_inputs": netlist.num_inputs,
            "clients": CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "serving": serving,
            "cluster": cluster,
            "store": store,
        }
        with open(JSON_PATH, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {JSON_PATH}")
        if serving["speedup"] < 3.0:
            raise SystemExit(
                f"micro-batching speedup {serving['speedup']}x is below "
                "the 3x acceptance bar"
            )
        # Shards are processes: parallel speedup needs real cores.  On
        # the single-core CI container the row is recorded but the bar
        # is not enforceable (three processes time-slice one CPU).
        if (os.cpu_count() or 1) >= 4 and cluster["speedup"] < 2.0:
            raise SystemExit(
                f"3-shard aggregate speedup {cluster['speedup']}x is "
                "below the 2x acceptance bar"
            )


if __name__ == "__main__":
    main()
