"""E11 — telemetry overhead: the default-off path must cost ~nothing.

The observability subsystem (:mod:`repro.obs`) is woven through the hot
paths of the pipeline — ``DDManager.apply``, the compiled batch kernels,
the model builder.  Its contract is that with tracing *disabled* (the
default: the global tracer is a :class:`~repro.obs.trace.NullTracer`)
an instrumented call site pays only a shared no-op context manager and,
for always-on counters, one attribute add.  This benchmark measures both
primitives directly and the end-to-end effect on a model build.

It also bounds the *serving* cost of distributed tracing.  Three modes
are interleaved against one batched server: tracing off, propagation
only (``enable_tracing(record=False)`` — contexts mint and travel on
the wire, nothing is recorded locally), and full span recording.  The
end-to-end req/s rows are reported honestly but NOT asserted: on a
shared single-CPU CI box, run-to-run spread of the serving loop is
10-20%, which swamps a 2% effect.  The asserted bound is built from the
deterministic per-request cost instead: every operation propagation
adds to a request (client header mint, wire encode/decode of the extra
field, the server's header fetch — the parse itself is deferred to the
sampled slow-query log, off the per-request path) is micro-timed, and
their sum must stay under 2% of the measured batched request budget.

Artifacts: ``benchmarks/results/obs_overhead.txt``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py

The assertions are deliberately loose (CI machines jitter); the point is
to catch a regression that makes the no-op path allocate or take a lock,
which shows up as an order of magnitude, not a few percent.
"""

from __future__ import annotations

import time

import numpy as np

from _common import QUICK, write_result

from repro.circuits import load_circuit
from repro.models import build_add_model
from repro.obs.metrics import get_metrics
from repro.obs.trace import (
    NULL_TRACER,
    TraceContext,
    disable_tracing,
    enable_tracing,
    new_trace_context,
)
from repro.serve import ServerConfig, generate_load, start_in_thread
from repro.serve import protocol

ITERATIONS = 200_000 if not QUICK else 50_000

#: Per-call budget for the disabled-tracer span path.  A real regression
#: (allocation, lock, clock read) costs microseconds; the healthy path is
#: tens of nanoseconds.
NULL_SPAN_BUDGET_NS = 2_000
COUNTER_BUDGET_NS = 1_000

#: The serving bound: context propagation may add at most 2% to the
#: per-request budget of the batched server (i.e. <2% off batched
#: req/s).  Asserted on the deterministic component sum, not on the
#: noisy end-to-end rows — see the module docstring.
PROPAGATION_SHARE_BUDGET = 0.02

SERVE_MACRO = "parity"
SERVE_CLIENTS = 32 if not QUICK else 8
SERVE_REQUESTS_PER_CLIENT = 40 if not QUICK else 10
SERVE_ROUNDS = 6 if not QUICK else 2
MICRO_ITERATIONS = 100_000 if not QUICK else 20_000


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def time_null_span() -> float:
    """ns per ``with tracer.span(...)`` under the no-op tracer."""
    tracer = NULL_TRACER
    n = ITERATIONS

    def loop():
        for _ in range(n):
            with tracer.span("bench.noop"):
                pass

    return _best_of(3, loop) / n * 1e9


def time_counter_inc() -> float:
    """ns per ``Counter.inc()`` on a cached instrument handle."""
    counter = get_metrics().counter("bench.obs_overhead")
    n = ITERATIONS

    def loop():
        for _ in range(n):
            counter.inc()

    return _best_of(3, loop) / n * 1e9


def time_build(tracing: bool) -> float:
    """Seconds for one instrumented model build, tracing on or off."""
    netlist = load_circuit("cmb")
    if tracing:
        enable_tracing()
    try:
        return _best_of(3, lambda: build_add_model(netlist, max_nodes=800))
    finally:
        disable_tracing()


def time_propagation_components() -> dict:
    """ns per request for each operation context propagation adds.

    These are the *deterministic* costs: header mint on the client, the
    bigger wire line on both ends, and the server's header fetch.  The
    server does not parse the header per request in propagation-only
    mode (the parse is deferred to the sampled slow-query log), so
    ``server_parse_ns`` is reported for reference but excluded from the
    asserted sum.
    """
    root = new_trace_context()
    payload = {
        "id": 7,
        "op": "evaluate",
        "model": SERVE_MACRO,
        "initial": [0] * 16,
        "final": [1] * 16,
    }
    n = MICRO_ITERATIONS

    # Client side: stamp a fresh child hop header onto the request.
    # Inline loops (no per-call lambda) so the measured cost matches the
    # production call shape.
    def loop_mint():
        for _ in range(n):
            payload["traceparent"] = root.child_traceparent()

    mint_ns = _best_of(3, loop_mint) / n * 1e9

    # Server side: fetching the (unparsed) header off the decoded
    # request, and — for reference — the deferred parse itself.
    header = root.child_traceparent()
    traced = dict(payload, traceparent=header)

    def loop_get():
        for _ in range(n):
            traced.get("traceparent")

    def loop_parse():
        for _ in range(n):
            TraceContext.from_traceparent(header)

    get_ns = _best_of(3, loop_get) / n * 1e9
    parse_ns = _best_of(3, loop_parse) / n * 1e9

    # Wire: the traceparent field makes every request line longer, paid
    # once in the client's encode and once in the server's decode.  The
    # deltas are tens-to-hundreds of ns — smaller than loop-to-loop
    # jitter — so each repeat times bare/traced/traced/bare (ABBA, which
    # cancels linear drift) and the delta is the median across repeats,
    # clamped at zero.
    bare = dict(payload)
    bare.pop("traceparent", None)
    bare_line = protocol.encode(bare)
    traced_line = protocol.encode(traced)

    def paired_delta(fn_bare, fn_traced) -> float:
        deltas = []
        for _ in range(7):
            marks = [time.perf_counter()]
            for fn in (fn_bare, fn_traced, fn_traced, fn_bare):
                for _ in range(n):
                    fn()
                marks.append(time.perf_counter())
            a = (marks[1] - marks[0]) + (marks[4] - marks[3])
            b = (marks[2] - marks[1]) + (marks[3] - marks[2])
            deltas.append((b - a) / (2 * n) * 1e9)
        deltas.sort()
        return max(0.0, deltas[len(deltas) // 2])

    def encode_bare():
        protocol.encode(bare)

    def encode_traced():
        protocol.encode(traced)

    def decode_bare():
        protocol.decode_request(bare_line)

    def decode_traced():
        protocol.decode_request(traced_line)

    encode_delta_ns = paired_delta(encode_bare, encode_traced)
    decode_delta_ns = paired_delta(decode_bare, decode_traced)
    return {
        "client_mint_ns": mint_ns,
        "server_get_ns": get_ns,
        "server_parse_ns": parse_ns,
        "encode_delta_ns": encode_delta_ns,
        "decode_delta_ns": decode_delta_ns,
        "wire_delta_bytes": len(traced_line) - len(bare_line),
        "propagation_ns": (
            mint_ns + get_ns + encode_delta_ns + decode_delta_ns
        ),
    }


def measure_serving_overhead() -> dict:
    """Best-of req/s for off / propagation-only / full-recording modes.

    The three modes are interleaved round-robin against one long-lived
    batched server so that drift (CPU contention, allocator state) hits
    every mode equally; each mode's row is its best round.
    """
    netlist = load_circuit(SERVE_MACRO)
    model = build_add_model(netlist)
    rng = np.random.default_rng(23)
    transitions = [
        (
            rng.random(netlist.num_inputs) < 0.5,
            rng.random(netlist.num_inputs) < 0.5,
        )
        for _ in range(32)
    ]
    config = ServerConfig(max_batch=64, max_wait_ms=0.5)
    handle = start_in_thread({SERVE_MACRO: model}, config)
    rounds = {"off": [], "prop": [], "full": []}
    try:
        generate_load(
            handle.host, handle.port, SERVE_MACRO, transitions,
            clients=8, requests_per_client=5,
        )
        for _ in range(SERVE_ROUNDS):
            for mode in ("off", "prop", "full"):
                if mode == "prop":
                    enable_tracing(record=False)
                elif mode == "full":
                    enable_tracing()
                try:
                    report = generate_load(
                        handle.host, handle.port, SERVE_MACRO, transitions,
                        clients=SERVE_CLIENTS,
                        requests_per_client=SERVE_REQUESTS_PER_CLIENT,
                    )
                finally:
                    if mode != "off":
                        disable_tracing()
                if report.errors:
                    raise AssertionError(
                        f"{mode} wave had {report.errors} errors"
                    )
                rounds[mode].append(
                    report.to_dict()["requests_per_sec"]
                )
    finally:
        handle.stop()
    medians = {
        mode: sorted(values)[len(values) // 2]
        for mode, values in rounds.items()
    }
    return {
        "serve_off_rps": max(rounds["off"]),
        "serve_prop_rps": max(rounds["prop"]),
        "serve_full_rps": max(rounds["full"]),
        # The budget denominator: a *typical* batched request's wall
        # share, not the single fastest round (best-of spikes would
        # make the asserted ratio jumpy).
        "serve_off_rps_median": medians["off"],
    }


def run_suite() -> dict:
    result = {
        "null_span_ns": time_null_span(),
        "counter_inc_ns": time_counter_inc(),
        "build_off_s": time_build(tracing=False),
        "build_on_s": time_build(tracing=True),
    }
    result.update(time_propagation_components())
    result.update(measure_serving_overhead())
    result["propagation_share"] = result["propagation_ns"] / (
        1e9 / result["serve_off_rps_median"]
    )
    return result


def format_table(result: dict) -> str:
    on, off = result["build_on_s"], result["build_off_s"]
    off_rps = result["serve_off_rps"]
    prop_rps = result["serve_prop_rps"]
    full_rps = result["serve_full_rps"]
    share = result["propagation_share"]
    return "\n".join(
        [
            f"no-op span           {result['null_span_ns']:>10.0f} ns/call",
            f"counter inc          {result['counter_inc_ns']:>10.0f} ns/call",
            f"build, tracing off   {off * 1e3:>10.1f} ms",
            f"build, tracing on    {on * 1e3:>10.1f} ms "
            f"({(on / off - 1.0) * 100.0:+.1f}%)",
            f"serve, tracing off   {off_rps:>10.0f} req/s",
            f"serve, propagation   {prop_rps:>10.0f} req/s "
            f"({(1.0 - prop_rps / off_rps) * 100.0:+.1f}% vs off, "
            f"unasserted)",
            f"serve, full spans    {full_rps:>10.0f} req/s "
            f"({(1.0 - full_rps / off_rps) * 100.0:+.1f}% vs off, "
            f"unasserted)",
            f"propagation/request  {result['propagation_ns']:>10.0f} ns "
            f"= {share * 100.0:.2f}% of request budget "
            f"(bound {PROPAGATION_SHARE_BUDGET * 100.0:.0f}%)",
            f"  mint {result['client_mint_ns']:.0f} | "
            f"get {result['server_get_ns']:.0f} | "
            f"encode +{result['encode_delta_ns']:.0f} | "
            f"decode +{result['decode_delta_ns']:.0f} ns; "
            f"+{result['wire_delta_bytes']} wire bytes; "
            f"deferred parse {result['server_parse_ns']:.0f} ns",
        ]
    )


def main() -> None:
    result = run_suite()
    table = format_table(result)
    print(table)
    write_result("obs_overhead", table)


def test_obs_overhead():
    """Benchmark-suite entry: the disabled path must stay no-op cheap."""
    result = run_suite()
    write_result("obs_overhead", format_table(result))
    assert result["null_span_ns"] < NULL_SPAN_BUDGET_NS
    assert result["counter_inc_ns"] < COUNTER_BUDGET_NS
    # Context propagation adds <2% to batched req/s: deterministic
    # per-request propagation cost vs the measured request budget.
    assert result["propagation_share"] < PROPAGATION_SHARE_BUDGET, (
        f"propagation costs {result['propagation_ns']:.0f} ns/request, "
        f"{result['propagation_share'] * 100.0:.2f}% of the batched "
        f"request budget (bound "
        f"{PROPAGATION_SHARE_BUDGET * 100.0:.0f}%)"
    )


if __name__ == "__main__":
    main()
