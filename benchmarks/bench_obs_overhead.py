"""E11 — telemetry overhead: the default-off path must cost ~nothing.

The observability subsystem (:mod:`repro.obs`) is woven through the hot
paths of the pipeline — ``DDManager.apply``, the compiled batch kernels,
the model builder.  Its contract is that with tracing *disabled* (the
default: the global tracer is a :class:`~repro.obs.trace.NullTracer`)
an instrumented call site pays only a shared no-op context manager and,
for always-on counters, one attribute add.  This benchmark measures both
primitives directly and the end-to-end effect on a model build.

Artifacts: ``benchmarks/results/obs_overhead.txt``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py

The assertions are deliberately loose (CI machines jitter); the point is
to catch a regression that makes the no-op path allocate or take a lock,
which shows up as an order of magnitude, not a few percent.
"""

from __future__ import annotations

import time

from _common import QUICK, write_result

from repro.circuits import load_circuit
from repro.models import build_add_model
from repro.obs.metrics import get_metrics
from repro.obs.trace import NULL_TRACER, disable_tracing, enable_tracing

ITERATIONS = 200_000 if not QUICK else 50_000

#: Per-call budget for the disabled-tracer span path.  A real regression
#: (allocation, lock, clock read) costs microseconds; the healthy path is
#: tens of nanoseconds.
NULL_SPAN_BUDGET_NS = 2_000
COUNTER_BUDGET_NS = 1_000


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def time_null_span() -> float:
    """ns per ``with tracer.span(...)`` under the no-op tracer."""
    tracer = NULL_TRACER
    n = ITERATIONS

    def loop():
        for _ in range(n):
            with tracer.span("bench.noop"):
                pass

    return _best_of(3, loop) / n * 1e9


def time_counter_inc() -> float:
    """ns per ``Counter.inc()`` on a cached instrument handle."""
    counter = get_metrics().counter("bench.obs_overhead")
    n = ITERATIONS

    def loop():
        for _ in range(n):
            counter.inc()

    return _best_of(3, loop) / n * 1e9


def time_build(tracing: bool) -> float:
    """Seconds for one instrumented model build, tracing on or off."""
    netlist = load_circuit("cmb")
    if tracing:
        enable_tracing()
    try:
        return _best_of(3, lambda: build_add_model(netlist, max_nodes=800))
    finally:
        disable_tracing()


def run_suite() -> dict:
    return {
        "null_span_ns": time_null_span(),
        "counter_inc_ns": time_counter_inc(),
        "build_off_s": time_build(tracing=False),
        "build_on_s": time_build(tracing=True),
    }


def format_table(result: dict) -> str:
    on, off = result["build_on_s"], result["build_off_s"]
    return "\n".join(
        [
            f"no-op span           {result['null_span_ns']:>10.0f} ns/call",
            f"counter inc          {result['counter_inc_ns']:>10.0f} ns/call",
            f"build, tracing off   {off * 1e3:>10.1f} ms",
            f"build, tracing on    {on * 1e3:>10.1f} ms "
            f"({(on / off - 1.0) * 100.0:+.1f}%)",
        ]
    )


def main() -> None:
    result = run_suite()
    table = format_table(result)
    print(table)
    write_result("obs_overhead", table)


def test_obs_overhead():
    """Benchmark-suite entry: the disabled path must stay no-op cheap."""
    result = run_suite()
    write_result("obs_overhead", format_table(result))
    assert result["null_span_ns"] < NULL_SPAN_BUDGET_NS
    assert result["counter_inc_ns"] < COUNTER_BUDGET_NS


if __name__ == "__main__":
    main()
