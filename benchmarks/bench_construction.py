"""E9 — model-construction cost (the CPU column of Table 1).

Times :func:`build_add_model` itself — the paper's Fig.-6 loop including
symbolic sweeps and size-bounded approximation — across circuits and MAX
budgets.  This is the one experiment where pytest-benchmark's repeated
timing is the point, so it uses multiple rounds on the smaller circuits.
"""

from __future__ import annotations

import pytest

from _common import write_result

from repro.circuits import load_circuit
from repro.eval import ascii_table
from repro.models import build_add_model


@pytest.mark.parametrize("name", ["cm85", "cmb", "decod"])
def test_build_time_small_circuits(benchmark, name):
    netlist = load_circuit(name)
    model = benchmark(build_add_model, netlist, max_nodes=500)
    assert model.size <= 500


@pytest.mark.parametrize("max_nodes", [200, 1000, 5000])
def test_build_time_vs_budget_alu2(benchmark, max_nodes):
    netlist = load_circuit("alu2")
    model = benchmark.pedantic(
        build_add_model,
        args=(netlist,),
        kwargs={"max_nodes": max_nodes},
        rounds=2,
        iterations=1,
    )
    assert model.size <= max_nodes


def test_construction_cost_table(benchmark):
    """One-shot build-cost survey written to the results directory."""

    def survey():
        rows = []
        for name, max_nodes in (
            ("decod", 200),
            ("cm85", 1000),
            ("cmb", 800),
            ("parity", 1200),
            ("pcle", 1500),
            ("alu2", 2000),
            ("comp", 2000),
        ):
            netlist = load_circuit(name)
            model = build_add_model(netlist, max_nodes=max_nodes)
            report = model.report
            rows.append(
                [
                    name,
                    netlist.num_gates,
                    max_nodes,
                    report.final_nodes,
                    report.peak_nodes,
                    report.num_approximations,
                    round(report.cpu_seconds, 2),
                ]
            )
        return rows

    rows = benchmark.pedantic(survey, rounds=1, iterations=1)
    text = (
        "E9 / construction cost — build_add_model wall time\n\n"
        + ascii_table(
            ["circuit", "gates", "MAX", "nodes", "peak", "approx", "CPU(s)"],
            rows,
            precision=2,
        )
    )
    path = write_result("construction_cost", text)
    print("\n" + text + f"\n[written to {path}]")
    assert all(row[6] >= 0 for row in rows)
