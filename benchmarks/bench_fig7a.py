"""E1 — Figure 7a: relative error vs transition probability on cm85.

Regenerates the paper's Fig. 7a: the relative error of the characterized
``Con`` and ``Lin`` estimators explodes once the input statistics leave
the characterization point (st = 0.5), while the analytically built ADD
model stays flat across the whole st range at sp = 0.5.
"""

from __future__ import annotations

from _common import bench_sequence_length, write_result

from repro.circuits import load_circuit
from repro.circuits.mcnc import SUGGESTED_MAX_NODES
from repro.eval import SweepConfig, ascii_table, multi_series_plot, run_sweep
from repro.models import ConstantModel, LinearModel, build_add_model, generate_training_data

ST_GRID = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95)


def run_fig7a() -> dict:
    netlist = load_circuit("cm85")
    training = generate_training_data(
        netlist, length=bench_sequence_length(), seed=5
    )
    models = {
        "Con": ConstantModel.characterize(netlist, training),
        "Lin": LinearModel.characterize(netlist, training),
        "ADD": build_add_model(
            netlist, max_nodes=SUGGESTED_MAX_NODES["cm85"][0]
        ),
    }
    config = SweepConfig(
        sp_values=(0.5,),
        st_values=ST_GRID,
        sequence_length=bench_sequence_length(),
        seed=171,
    )
    sweep = run_sweep(netlist, models, config)
    curves = {name: dict(sweep.re_curve(name, sp=0.5)) for name in models}
    return {"curves": curves, "sweep": sweep}


def test_fig7a_re_vs_st(benchmark):
    result = benchmark.pedantic(run_fig7a, rounds=1, iterations=1)
    curves = result["curves"]
    rows = [
        [f"{st:.2f}"]
        + [100.0 * curves[name][st] for name in ("Con", "Lin", "ADD")]
        for st in ST_GRID
    ]
    table = ascii_table(["st", "RE Con (%)", "RE Lin (%)", "RE ADD (%)"], rows)
    plot = multi_series_plot(
        {
            name: sorted(curves[name].items())
            for name in ("Con", "Lin", "ADD")
        },
        label_x="st",
    )
    text = (
        "E1 / Figure 7a — relative error of average-power estimates vs st\n"
        "circuit cm85, sp = 0.5; Con and Lin characterized at sp=st=0.5\n\n"
        + table
        + "\n\nall three curves (flat ADD is the paper's headline shape):\n"
        + plot
    )
    path = write_result("fig7a_re_vs_st", text)
    print("\n" + text + f"\n[written to {path}]")

    # Shape assertions from the paper: baselines blow up at low st
    # (">100% when st < 0.2"), the ADD curve does not.
    assert curves["Con"][0.05] > 1.0
    assert curves["Lin"][0.05] > 3 * curves["ADD"][0.05]
    assert max(curves["ADD"].values()) < min(1.0, 0.4 * max(curves["Con"].values()))
