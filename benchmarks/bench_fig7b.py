"""E2 — Figure 7b: accuracy/size trade-off of the cm85 power model.

Regenerates the paper's Fig. 7b: one (near-)exact ADD model of cm85 is
shrunk through a ladder of node budgets and each size is scored (ARE over
the sweep grid) against shared golden runs.
"""

from __future__ import annotations

from _common import bench_sequence_length, write_result

from repro.circuits import load_circuit
from repro.eval import SweepConfig, ascii_table, series_plot, size_accuracy_tradeoff

SIZES = (2000, 1500, 1000, 500, 200, 100, 50, 20, 10, 5)


def run_fig7b() -> list:
    netlist = load_circuit("cm85")
    config = SweepConfig(
        sp_values=(0.3, 0.5, 0.7),
        st_values=(0.1, 0.3, 0.5, 0.7, 0.9),
        sequence_length=bench_sequence_length(),
        seed=272,
    )
    return size_accuracy_tradeoff(netlist, SIZES, config=config)


def test_fig7b_size_accuracy_tradeoff(benchmark):
    points = benchmark.pedantic(run_fig7b, rounds=1, iterations=1)
    rows = [[p.target_nodes, p.actual_nodes, p.are_percent] for p in points]
    text = (
        "E2 / Figure 7b — ARE vs ADD model size, circuit cm85\n"
        "(paper: exact model >10000 nodes; 5-10 node models reach "
        "ARE < 20%)\n\n"
        + ascii_table(["target", "nodes", "ARE (%)"], rows)
        + "\n\n"
        + series_plot(
            [(p.actual_nodes, p.are_percent) for p in points],
            label_x="nodes",
            label_y="ARE %",
        )
    )
    path = write_result("fig7b_tradeoff", text)
    print("\n" + text + f"\n[written to {path}]")

    # Shape: ARE decreases (weakly) as the budget grows, spanning from a
    # crude constant-like model down to near-exactness.
    ordered = sorted(points, key=lambda p: p.target_nodes)
    assert ordered[-1].are_average < 0.1
    assert ordered[0].are_average > ordered[-1].are_average
    # Allow small non-monotonic wiggles from sampling, nothing structural.
    for small, large in zip(ordered, ordered[1:]):
        assert large.are_average <= small.are_average * 1.25 + 0.01
