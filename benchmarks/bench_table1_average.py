"""E3 — Table 1, columns 4-8: average-power estimator accuracy.

Regenerates the left half of the paper's Table 1 over the benchmark
suite: ARE of the characterized constant (Con) and linear (Lin)
estimators and of the analytical ADD model, plus the MAX node budget and
the model-construction CPU time.  Paper reference values are printed
alongside for the shape comparison recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from _common import bench_circuits, table1_row, write_result

from repro.eval import ascii_table


def run_average_table() -> list:
    return [table1_row(name) for name in bench_circuits()]


def test_table1_average_estimators(benchmark):
    rows = benchmark.pedantic(run_average_table, rounds=1, iterations=1)
    headers = [
        "circuit", "n", "N",
        "Con%", "Lin%", "ADD%", "MAX", "CPU(s)",
        "paper:Con%", "paper:Lin%", "paper:ADD%",
    ]
    body = []
    for row in rows:
        stats = row["netlist"].stats()
        paper = row["paper"]
        body.append([
            row["name"], stats.num_inputs, stats.num_gates,
            row["are_con"], row["are_lin"], row["are_add"],
            row["avg_max"], round(row["cpu_avg"], 1),
            paper.are_con_percent, paper.are_lin_percent, paper.are_add_percent,
        ])
    text = (
        "E3 / Table 1 (average estimators) — measured vs paper\n"
        "N differs from the paper: MCNC netlists are substituted by "
        "functional equivalents (DESIGN.md §4)\n\n" + ascii_table(headers, body)
    )
    path = write_result("table1_average", text)
    print("\n" + text + f"\n[written to {path}]")

    # Shape assertions: the ADD model must beat Lin which must beat Con on
    # every circuit, as in every row of the paper's table.  Parity-style
    # circuits are a knife edge for Lin vs Con (XOR-tree power is not
    # linear in per-bit activity; the paper's parity row also shows its
    # smallest Lin/Con gap), so the Lin < Con check gets 10% slack.
    for row in rows:
        assert row["are_add"] < row["are_lin"], row["name"]
        assert row["are_lin"] < 1.1 * row["are_con"], row["name"]
    # Aggregate factor: the paper reports ~10x Lin->ADD and ~50x Con->ADD;
    # require clear order-of-magnitude-style separation on the mean.
    mean_add = sum(r["are_add"] for r in rows) / len(rows)
    mean_lin = sum(r["are_lin"] for r in rows) / len(rows)
    mean_con = sum(r["are_con"] for r in rows) / len(rows)
    assert mean_add < 0.5 * mean_lin
    assert mean_add < 0.2 * mean_con
