"""E6 — ablation: variable ordering of the doubled input space.

Section 2.1 relies on variable ordering to keep the ADD small.  Two
orthogonal choices are measured on the exact switching-capacitance ADD:

1. **scheme** — interleaved ``xi_1 xf_1 xi_2 xf_2 ...`` versus blocked
   ``xi... xf...`` (with the fanin-DFS input order);
2. **input order** — fanin-DFS heuristic versus the raw declaration
   order (with the interleaved scheme).

The interleaved/DFS combination is the library default.  Some
combinations are *infeasible by construction* and excluded rather than
timed out: the 16:1 multiplexer (cm150) under the declaration order puts
all data bits above the selects, whose node-function BDDs alone are
exponential (a textbook ordering pathology), and parity-style circuits
explode under the blocked scheme because every ``xi_k`` must pair with
its ``xf_k``.  Those blowups are the strongest data points for the
default, and are recorded in the results file as ``>mem``.
"""

from __future__ import annotations

from _common import write_result

from repro.circuits import load_circuit
from repro.eval import ascii_table
from repro.models import build_add_model

SCHEME_CIRCUITS = ("decod", "cm150", "cm85", "cmb")
ORDER_CIRCUITS = ("decod", "cmb", "cm85")


def run_ordering_ablation() -> dict:
    scheme_rows = []
    for name in SCHEME_CIRCUITS:
        netlist = load_circuit(name)
        interleaved = build_add_model(netlist, scheme="interleaved").size
        blocked = build_add_model(netlist, scheme="blocked").size
        scheme_rows.append(
            [name, interleaved, blocked, round(blocked / interleaved, 2)]
        )
    order_rows = []
    for name in ORDER_CIRCUITS:
        netlist = load_circuit(name)
        dfs = build_add_model(netlist).size
        declared = build_add_model(
            netlist, input_order=list(netlist.inputs)
        ).size
        order_rows.append([name, dfs, declared, round(declared / dfs, 2)])
    return {"scheme": scheme_rows, "order": order_rows}


def test_ablation_variable_ordering(benchmark):
    result = benchmark.pedantic(run_ordering_ablation, rounds=1, iterations=1)
    scheme_table = ascii_table(
        ["circuit", "interleaved", "blocked", "ratio"], result["scheme"]
    )
    order_table = ascii_table(
        ["circuit", "fanin-DFS", "declared", "ratio"], result["order"]
    )
    text = (
        "E6 / ablation — exact switching-capacitance ADD size vs ordering\n\n"
        "xi/xf scheme (fanin-DFS input order):\n" + scheme_table
        + "\n\nprimary-input order (interleaved scheme):\n" + order_table
        + "\n\nexcluded as infeasible (exponential before any size cap):\n"
        "  parity, pcle under the blocked scheme;\n"
        "  cm150 (16:1 mux) under the declaration order (data above selects).\n"
    )
    path = write_result("ablation_ordering", text)
    print("\n" + text + f"\n[written to {path}]")

    # The default must win in aggregate on both axes.
    assert sum(r[1] for r in result["scheme"]) < sum(r[2] for r in result["scheme"])
    assert sum(r[1] for r in result["order"]) < sum(r[2] for r in result["order"])
