"""E5 — ablation: what the collapse strategy and selection rule buy.

Section 3 of the paper picks nodes by (variance-ranked) scores and
replaces them by averages or maxima.  This ablation quantifies those
choices at one fixed size budget:

- ``avg`` vs ``random`` node selection (does variance guidance matter?);
- mass-weighted vs the paper's unweighted ranking (does weighting by the
  fraction of input space reaching a node matter?);
- ``max``-value replacement (bound) vs ``avg`` replacement, showing the
  accuracy price paid for conservatism.
"""

from __future__ import annotations

from _common import bench_sequence_length, write_result

import repro.dd.approx as approx
from repro.circuits import load_circuit
from repro.eval import SweepConfig, ascii_table, compute_truth_runs, evaluate_models_on_runs
from repro.models import build_add_model
from repro.models.addmodel import AddPowerModel

BUDGET = 300
CIRCUITS = ("cm85", "parity", "cmb")


def shrink_variant(exact, budget, strategy, weighted):
    root = approx.approximate(
        exact.manager,
        exact.root,
        budget,
        strategy,
        weighted=weighted,
        weight_fn=exact.weight_fn if weighted else None,
    )
    model = AddPowerModel(
        exact.macro_name,
        exact.space,
        root,
        strategy,
        input_names=exact.input_names,
    )
    return model


def run_ablation() -> list:
    config = SweepConfig(
        sp_values=(0.5,),
        st_values=(0.1, 0.3, 0.5, 0.7, 0.9),
        sequence_length=bench_sequence_length(),
        seed=373,
    )
    results = []
    for name in CIRCUITS:
        netlist = load_circuit(name)
        exact = build_add_model(netlist)
        runs = compute_truth_runs(netlist, config)
        variants = {
            "avg+weighted": shrink_variant(exact, BUDGET, "avg", True),
            "avg+unweighted": shrink_variant(exact, BUDGET, "avg", False),
            "random": shrink_variant(exact, BUDGET, "random", False),
            "max (bound)": shrink_variant(exact, BUDGET, "max", True),
        }
        sweep = evaluate_models_on_runs(name, dict(variants), runs)
        results.append(
            {
                "name": name,
                "exact_nodes": exact.size,
                "are": {
                    label: 100.0 * sweep.are_average(label)
                    for label in variants
                },
            }
        )
    return results


def test_ablation_collapse_strategy(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    headers = ["circuit", "exact", "avg+weighted%", "avg+unweighted%",
               "random%", "max-bound%"]
    body = [
        [
            r["name"], r["exact_nodes"],
            r["are"]["avg+weighted"], r["are"]["avg+unweighted"],
            r["are"]["random"], r["are"]["max (bound)"],
        ]
        for r in results
    ]
    text = (
        f"E5 / ablation — collapse strategy at a fixed {BUDGET}-node budget\n"
        "(ARE of average-power estimates, sp = 0.5 sweep)\n\n"
        + ascii_table(headers, body)
    )
    path = write_result("ablation_strategy", text)
    print("\n" + text + f"\n[written to {path}]")

    for r in results:
        # Score-guided selection must beat random selection...
        assert r["are"]["avg+weighted"] <= r["are"]["random"] + 1.0, r["name"]
        # ...and average replacement must beat max replacement on
        # average-power accuracy (the bound trades accuracy for safety).
        assert r["are"]["avg+weighted"] < r["are"]["max (bound)"], r["name"]
