"""E12 — distributed build pipeline: farm scale-out and sync throughput.

Two questions about the build-queue tier in ``src/repro/serve/queue.py``:

1. **Farm scale-out.**  A batch of distinct ADD-model builds routed
   through the queue to a multi-process worker farm vs the same batch
   built sequentially in-process.  Workers are forked processes, so the
   payoff only materialises with spare cores; the table records the
   honest numbers together with ``cpu_count``.
2. **Store sync throughput.**  Replicating the resulting store to a
   fresh local backend with read-back hash verification — bytes/second
   of verified replication, and the no-op cost of an idempotent
   re-sync.

Artifacts: ``benchmarks/results/build_queue.txt``.  This experiment is
operational (wall-clock, not model accuracy), so it has no checked-in
JSON at the repo root.

Run directly::

    PYTHONPATH=src python benchmarks/bench_build_queue.py

``REPRO_BENCH_QUICK=1`` shrinks the job count for a fast smoke run.
"""

from __future__ import annotations

import os
import tempfile
import time

from _common import QUICK, write_result

from repro.models import build_add_model
from repro.netlist import NetlistBuilder
from repro.serve import (
    BuildQueueClient,
    ModelStore,
    QueueConfig,
    WorkerFarm,
    open_backend,
    start_queue,
    sync_stores,
)

JOBS = 6 if QUICK else 12
WORKERS = 4


def make_netlist(index: int):
    builder = NetlistBuilder(f"bench{index}")
    a, b, c = builder.input("a"), builder.input("b"), builder.input("c")
    net = builder.nand2(a, b)
    for step in range(index + 4):
        other = builder.xor2(b, c) if step % 2 else builder.nor2(a, c)
        net = builder.nand2(net, other)
    builder.output("y", net)
    return builder.build()


def main() -> None:
    netlists = [make_netlist(i) for i in range(JOBS)]

    started = time.perf_counter()
    for netlist in netlists:
        build_add_model(netlist, max_nodes=400)
    sequential_s = time.perf_counter() - started

    with tempfile.TemporaryDirectory() as root:
        store_dir = os.path.join(root, "store")
        with start_queue(QueueConfig(lease_s=30.0)) as queue:
            with WorkerFarm(
                queue.host, queue.port, store_dir, count=WORKERS
            ):
                with BuildQueueClient(queue.host, queue.port) as client:
                    started = time.perf_counter()
                    keys = [client.submit(n)["key"] for n in netlists]
                    for key in keys:
                        state = client.wait(key, timeout_s=300.0)
                        assert state["state"] == "done", state
                    farm_s = time.perf_counter() - started

        store = ModelStore(store_dir)
        total_bytes = sum(e.payload_bytes for e in store.ls())
        replica = open_backend(os.path.join(root, "replica"))
        started = time.perf_counter()
        report = sync_stores(store.backend, replica)
        sync_s = time.perf_counter() - started
        assert report.ok and report.verified == JOBS, report.summary()
        started = time.perf_counter()
        resync = sync_stores(store.backend, replica)
        resync_s = time.perf_counter() - started
        assert resync.skipped == JOBS, resync.summary()

    speedup = sequential_s / farm_s if farm_s > 0 else float("inf")
    mb_s = (total_bytes / 1e6) / sync_s if sync_s > 0 else float("inf")
    lines = [
        "E12  distributed build pipeline",
        f"jobs={JOBS}  workers={WORKERS}  cpu_count={os.cpu_count()}",
        "",
        f"sequential in-process builds   {sequential_s:8.3f} s",
        f"queue + {WORKERS}-worker farm          {farm_s:8.3f} s"
        f"   ({speedup:.2f}x)",
        "",
        f"sync {total_bytes} bytes, hash-verified {sync_s:8.3f} s"
        f"   ({mb_s:.1f} MB/s)",
        f"idempotent re-sync (all skipped)  {resync_s:8.3f} s",
    ]
    text = "\n".join(lines)
    print(text)
    path = write_result("build_queue", text)
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
