"""E11 — the C6288 limitation: multiplier ADDs blow up (paper Sec. 4 close).

The paper concedes that "for some circuits (e.g., C6288) ADDs with more
than 100000 nodes were required to bring the ARE below 30%" — arithmetic
multipliers are the known worst case for decision-diagram methods.  This
experiment reproduces that limitation quantitatively on array
multipliers: the exact switching-capacitance ADD grows geometrically with
operand width (roughly an order of magnitude per extra bit), and a
fixed-size approximated model pays for the missing nodes with ARE.
"""

from __future__ import annotations

from _common import bench_sequence_length, write_result

from repro.circuits import array_multiplier
from repro.eval import SweepConfig, ascii_table, compute_truth_runs, evaluate_models_on_runs
from repro.models import build_add_model

WIDTHS = (2, 3, 4)
BUDGET = 500


def run_blowup() -> list:
    rows = []
    for width in WIDTHS:
        netlist = array_multiplier(width)
        exact = build_add_model(netlist)
        config = SweepConfig(
            sp_values=(0.5,),
            st_values=(0.1, 0.3, 0.5, 0.7, 0.9),
            sequence_length=min(bench_sequence_length(), 1500),
            seed=777,
        )
        runs = compute_truth_runs(netlist, config)
        bounded = build_add_model(netlist, max_nodes=BUDGET)
        sweep = evaluate_models_on_runs(
            netlist.name, {"small": bounded, "exact": exact}, runs
        )
        rows.append(
            {
                "width": width,
                "inputs": netlist.num_inputs,
                "gates": netlist.num_gates,
                "exact_nodes": exact.size,
                "small_are": 100.0 * sweep.are_average("small"),
                "exact_are": 100.0 * sweep.are_average("exact"),
            }
        )
    return rows


def test_multiplier_add_blowup(benchmark):
    rows = benchmark.pedantic(run_blowup, rounds=1, iterations=1)
    body = [
        [
            f"mult{r['width']}", r["inputs"], r["gates"], r["exact_nodes"],
            r["small_are"], r["exact_are"],
        ]
        for r in rows
    ]
    text = (
        "E11 / limitation study — array multipliers (the C6288 effect)\n"
        f"(ARE of a {BUDGET}-node model vs the exact model; exact model "
        "size grows ~an order of magnitude per operand bit)\n\n"
        + ascii_table(
            ["circuit", "n", "gates", "exact ADD nodes",
             f"ARE@{BUDGET} (%)", "ARE exact (%)"],
            body,
        )
    )
    path = write_result("multiplier_blowup", text)
    print("\n" + text + f"\n[written to {path}]")

    # Geometric growth: each extra operand bit multiplies the exact size
    # by a large factor (the paper's qualitative claim).
    sizes = [r["exact_nodes"] for r in rows]
    for smaller, larger in zip(sizes, sizes[1:]):
        assert larger > 5 * smaller
    # The exact model is exact; the budgeted model degrades with width.
    for r in rows:
        assert r["exact_are"] < 1e-6
    assert rows[-1]["small_are"] > rows[0]["small_are"]
