"""E10 — batch-evaluation throughput: every backend vs the per-row walk.

Measures :meth:`AddPowerModel.pair_capacitances` throughput (rows/second)
for each registered evaluation backend (levelized, bit-parallel, codegen;
see :mod:`repro.dd.backends`) against the pre-compilation baseline — one
``DDManager.evaluate`` pointer walk per pattern in pure Python — for
several macro sizes and batch sizes ``P``.  All paths are checked
bit-for-bit on the rows they share before any number is reported.

Artifacts:

- ``BENCH_eval_throughput.json`` at the repo root (full runs only), with
  schema ``{bench, rows: [{circuit, P, rows_per_sec_scalar,
  rows_per_sec_compiled, rows_per_sec_bitparallel, rows_per_sec_codegen,
  speedup, speedup_bitparallel, speedup_codegen}]}``.
  ``rows_per_sec_compiled`` stays the levelized kernel (the pre-backend
  meaning of "compiled"), so old consumers keep reading the same column;
  the per-backend speedups are relative to it;
- ``benchmarks/results/eval_throughput.txt``, the human-readable table.

Run directly::

    PYTHONPATH=src python benchmarks/bench_eval_throughput.py

or via ``make bench-eval``; ``make bench-smoke`` (REPRO_BENCH_QUICK=1)
is the ~5-second subset.  The scalar walk is timed on a capped row
subsample and reported as rows/second, since timing 100k pure-Python
walks outright would dominate the whole suite.
"""

from __future__ import annotations

import json
import os
import time
from typing import List, Optional, Tuple

import numpy as np

from _common import QUICK, write_result

from repro.circuits import load_circuit
from repro.models import build_add_model

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_eval_throughput.json")

#: (circuit, max_nodes) grid; ``None`` budget = exact model.  parity and
#: cmb have 16 inputs, cm150 has 21 — the macro-size axis of the sweep.
#: ``parity@60`` is a deliberately thin model (support <= 16 transition
#: variables) where the bit-parallel backend's tabulated path applies.
FULL_MACROS: List[Tuple[str, Optional[int]]] = [
    ("cm85", None),
    ("cmb", 800),
    ("parity", None),
    ("parity", 60),
    ("cm150", 500),
]
QUICK_MACROS: List[Tuple[str, Optional[int]]] = [("cmb", 800), ("parity", 60)]

FULL_BATCHES = (1_000, 10_000, 100_000)
QUICK_BATCHES = (1_000, 10_000)

#: Row cap for the scalar-walk timing (it is extrapolated to rows/s).
FULL_SCALAR_CAP = 20_000
QUICK_SCALAR_CAP = 2_000


#: Backends timed per batch beyond the levelized baseline.
EXTRA_BACKENDS = ("bitparallel", "codegen")


def _time_backend(compiled, packed, kernel: str) -> Tuple[float, np.ndarray]:
    """Best-of-3 wall time for one backend (first call warms it)."""
    compiled.evaluate_batch(packed, kernel=kernel)
    best = float("inf")
    result = None
    for _ in range(3):
        start = time.perf_counter()
        result = compiled.evaluate_batch(packed, kernel=kernel)
        best = min(best, time.perf_counter() - start)
    return best, result


def measure_circuit(name: str, max_nodes: Optional[int], batches, scalar_cap):
    """Throughput rows for one macro across all batch sizes."""
    from repro.dd import backends as dd_backends

    netlist = load_circuit(name)
    model = build_add_model(netlist, max_nodes=max_nodes)
    compiled = model.compiled()
    evaluate = model.manager.evaluate
    root = model.root
    rng = np.random.default_rng(97)
    rows = []
    for P in batches:
        initial = rng.random((P, netlist.num_inputs)) < 0.5
        final = rng.random((P, netlist.num_inputs)) < 0.5
        packed = model._pack_batch(initial, final)
        best, batch = _time_backend(compiled, packed, "levelized")
        sample = min(P, scalar_cap)
        start = time.perf_counter()
        scalar = np.array([evaluate(root, row) for row in packed[:sample]])
        scalar_elapsed = time.perf_counter() - start
        if not np.array_equal(scalar, batch[:sample]):
            raise AssertionError(
                f"{name}: compiled kernel diverges from the scalar walk"
            )
        compiled_rate = P / best
        scalar_rate = sample / scalar_elapsed
        row = {
            "circuit": name,
            "P": P,
            "rows_per_sec_scalar": round(scalar_rate, 1),
            "rows_per_sec_compiled": round(compiled_rate, 1),
            "speedup": round(compiled_rate / scalar_rate, 2),
            "num_inputs": netlist.num_inputs,
            "model_nodes": model.size,
            "max_nodes": max_nodes,
        }
        for kernel in EXTRA_BACKENDS:
            if not dd_backends.get_backend(kernel).supports(compiled):
                row[f"rows_per_sec_{kernel}"] = None
                row[f"speedup_{kernel}"] = None
                continue
            elapsed, result = _time_backend(compiled, packed, kernel)
            if not np.array_equal(result, batch):
                raise AssertionError(
                    f"{name}: {kernel} backend diverges from levelized"
                )
            rate = P / elapsed
            row[f"rows_per_sec_{kernel}"] = round(rate, 1)
            row[f"speedup_{kernel}"] = round(rate / compiled_rate, 2)
        rows.append(row)
    return rows


def run_suite():
    macros = QUICK_MACROS if QUICK else FULL_MACROS
    batches = QUICK_BATCHES if QUICK else FULL_BATCHES
    cap = QUICK_SCALAR_CAP if QUICK else FULL_SCALAR_CAP
    rows = []
    for name, max_nodes in macros:
        rows.extend(measure_circuit(name, max_nodes, batches, cap))
    return rows


def format_table(rows) -> str:
    def rate(value) -> str:
        return f"{value:,.0f}" if value is not None else "-"

    def boost(value) -> str:
        return f"{value:.1f}x" if value is not None else "-"

    lines = [
        f"{'circuit':<10}{'inputs':>7}{'nodes':>7}{'P':>9}"
        f"{'scalar r/s':>12}{'levelized r/s':>15}"
        f"{'bitpar r/s':>13}{'x':>7}{'codegen r/s':>13}{'x':>7}"
    ]
    for row in rows:
        lines.append(
            f"{row['circuit']:<10}{row['num_inputs']:>7}{row['model_nodes']:>7}"
            f"{row['P']:>9}{rate(row['rows_per_sec_scalar']):>12}"
            f"{rate(row['rows_per_sec_compiled']):>15}"
            f"{rate(row['rows_per_sec_bitparallel']):>13}"
            f"{boost(row['speedup_bitparallel']):>7}"
            f"{rate(row['rows_per_sec_codegen']):>13}"
            f"{boost(row['speedup_codegen']):>7}"
        )
    return "\n".join(lines)


def main() -> None:
    from repro.obs.metrics import get_metrics

    registry = get_metrics()
    registry.reset()
    rows = run_suite()
    table = format_table(rows)
    print(table)
    write_result("eval_throughput", table)
    if not QUICK:
        # The metrics snapshot documents exactly what the run exercised
        # (builds, compiled batches, rows) alongside the timing numbers.
        payload = {
            "bench": "eval_throughput",
            "rows": rows,
            "metrics": registry.snapshot(),
        }
        with open(JSON_PATH, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {JSON_PATH}")
    else:
        print("\nquick mode: repo-root JSON left untouched")


def test_eval_throughput():
    """Benchmark-suite entry: compiled path must beat the per-row walk,
    and the new backends must pay for themselves somewhere on the grid."""
    rows = run_suite()
    write_result("eval_throughput", format_table(rows))
    assert all(row["speedup"] > 1.0 for row in rows)
    largest = max(rows, key=lambda row: row["P"])
    assert largest["rows_per_sec_compiled"] > largest["rows_per_sec_scalar"]
    # The bit-parallel backend must beat levelized on at least one
    # circuit (its tabulated path; wide-support models stay levelized).
    assert any(
        (row["speedup_bitparallel"] or 0.0) > 1.0 for row in rows
    ), "bit-parallel backend never beat the levelized kernel"
    # Codegen must beat levelized wherever it compiled at all.
    codegen = [row["speedup_codegen"] for row in rows if row["speedup_codegen"]]
    assert codegen and max(codegen) > 1.0


if __name__ == "__main__":
    main()
