"""E10 — batch-evaluation throughput: compiled kernel vs the per-row walk.

Measures :meth:`AddPowerModel.pair_capacitances` throughput (rows/second)
with the compiled levelized kernel against the pre-compilation baseline —
one ``DDManager.evaluate`` pointer walk per pattern in pure Python — for
several macro sizes and batch sizes ``P``.  Both paths are checked
bit-for-bit on the rows they share before any number is reported.

Artifacts:

- ``BENCH_eval_throughput.json`` at the repo root (full runs only), with
  schema ``{bench, rows: [{circuit, P, rows_per_sec_scalar,
  rows_per_sec_compiled, speedup}]}``;
- ``benchmarks/results/eval_throughput.txt``, the human-readable table.

Run directly::

    PYTHONPATH=src python benchmarks/bench_eval_throughput.py

or via ``make bench-eval``; ``make bench-smoke`` (REPRO_BENCH_QUICK=1)
is the ~5-second subset.  The scalar walk is timed on a capped row
subsample and reported as rows/second, since timing 100k pure-Python
walks outright would dominate the whole suite.
"""

from __future__ import annotations

import json
import os
import time
from typing import List, Optional, Tuple

import numpy as np

from _common import QUICK, write_result

from repro.circuits import load_circuit
from repro.models import build_add_model

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_eval_throughput.json")

#: (circuit, max_nodes) grid; ``None`` budget = exact model.  parity and
#: cmb have 16 inputs, cm150 has 21 — the macro-size axis of the sweep.
FULL_MACROS: List[Tuple[str, Optional[int]]] = [
    ("cm85", None),
    ("cmb", 800),
    ("parity", None),
    ("cm150", 500),
]
QUICK_MACROS: List[Tuple[str, Optional[int]]] = [("cmb", 800)]

FULL_BATCHES = (1_000, 10_000, 100_000)
QUICK_BATCHES = (1_000, 10_000)

#: Row cap for the scalar-walk timing (it is extrapolated to rows/s).
FULL_SCALAR_CAP = 20_000
QUICK_SCALAR_CAP = 2_000


def measure_circuit(name: str, max_nodes: Optional[int], batches, scalar_cap):
    """Throughput rows for one macro across all batch sizes."""
    netlist = load_circuit(name)
    model = build_add_model(netlist, max_nodes=max_nodes)
    compiled = model.compiled()
    evaluate = model.manager.evaluate
    root = model.root
    rng = np.random.default_rng(97)
    rows = []
    for P in batches:
        initial = rng.random((P, netlist.num_inputs)) < 0.5
        final = rng.random((P, netlist.num_inputs)) < 0.5
        packed = model._pack_batch(initial, final)
        compiled.evaluate_batch(packed)  # warm the kernel path
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            batch = compiled.evaluate_batch(packed)
            best = min(best, time.perf_counter() - start)
        sample = min(P, scalar_cap)
        start = time.perf_counter()
        scalar = np.array([evaluate(root, row) for row in packed[:sample]])
        scalar_elapsed = time.perf_counter() - start
        if not np.array_equal(scalar, batch[:sample]):
            raise AssertionError(
                f"{name}: compiled kernel diverges from the scalar walk"
            )
        compiled_rate = P / best
        scalar_rate = sample / scalar_elapsed
        rows.append(
            {
                "circuit": name,
                "P": P,
                "rows_per_sec_scalar": round(scalar_rate, 1),
                "rows_per_sec_compiled": round(compiled_rate, 1),
                "speedup": round(compiled_rate / scalar_rate, 2),
                "num_inputs": netlist.num_inputs,
                "model_nodes": model.size,
                "max_nodes": max_nodes,
            }
        )
    return rows


def run_suite():
    macros = QUICK_MACROS if QUICK else FULL_MACROS
    batches = QUICK_BATCHES if QUICK else FULL_BATCHES
    cap = QUICK_SCALAR_CAP if QUICK else FULL_SCALAR_CAP
    rows = []
    for name, max_nodes in macros:
        rows.extend(measure_circuit(name, max_nodes, batches, cap))
    return rows


def format_table(rows) -> str:
    lines = [
        f"{'circuit':<10}{'inputs':>7}{'nodes':>7}{'P':>9}"
        f"{'scalar rows/s':>15}{'compiled rows/s':>17}{'speedup':>9}"
    ]
    for row in rows:
        lines.append(
            f"{row['circuit']:<10}{row['num_inputs']:>7}{row['model_nodes']:>7}"
            f"{row['P']:>9}{row['rows_per_sec_scalar']:>15,.0f}"
            f"{row['rows_per_sec_compiled']:>17,.0f}{row['speedup']:>8.1f}x"
        )
    return "\n".join(lines)


def main() -> None:
    from repro.obs.metrics import get_metrics

    registry = get_metrics()
    registry.reset()
    rows = run_suite()
    table = format_table(rows)
    print(table)
    write_result("eval_throughput", table)
    if not QUICK:
        # The metrics snapshot documents exactly what the run exercised
        # (builds, compiled batches, rows) alongside the timing numbers.
        payload = {
            "bench": "eval_throughput",
            "rows": rows,
            "metrics": registry.snapshot(),
        }
        with open(JSON_PATH, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {JSON_PATH}")
    else:
        print("\nquick mode: repo-root JSON left untouched")


def test_eval_throughput():
    """Benchmark-suite entry: compiled path must beat the per-row walk."""
    rows = run_suite()
    write_result("eval_throughput", format_table(rows))
    assert all(row["speedup"] > 1.0 for row in rows)
    largest = max(rows, key=lambda row: row["P"])
    assert largest["rows_per_sec_compiled"] > largest["rows_per_sec_scalar"]


if __name__ == "__main__":
    main()
