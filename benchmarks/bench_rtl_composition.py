"""E7 — RTL composition: pattern-dependent vs constant worst-case bounds.

Section 1.2's argument in numbers: on a multi-macro datapath, summing
per-macro constant worst cases gives a bound that no real cycle ever
approaches, while summing the per-macro *pattern-dependent* bounds tracks
the true per-cycle power closely — and never undershoots it.
"""

from __future__ import annotations

import numpy as np

from _common import bench_sequence_length, write_result

from repro.circuits import comparator, parity, ripple_adder
from repro.eval import ascii_table
from repro.models import build_upper_bound_model
from repro.rtl import RTLDesign
from repro.sim import markov_sequence


def build_design() -> RTLDesign:
    adder = ripple_adder(4, carry_in=False, name="add4")
    compare = comparator(4, name="cmp4")
    par = parity(4, name="par4")
    inputs = [f"{bus}{k}" for bus in ("a", "b", "c", "d") for k in range(4)]
    design = RTLDesign("datapath", inputs)
    design.add_instance(
        "sum_ab", adder,
        {f"a{k}": f"a{k}" for k in range(4)} | {f"b{k}": f"b{k}" for k in range(4)},
    )
    design.add_instance(
        "sum_cd", adder,
        {f"a{k}": f"c{k}" for k in range(4)} | {f"b{k}": f"d{k}" for k in range(4)},
    )
    design.add_instance(
        "cmp", compare,
        {f"a{k}": f"sum_ab.s{k}" for k in range(4)}
        | {f"b{k}": f"sum_cd.s{k}" for k in range(4)},
    )
    design.add_instance(
        "par", par,
        {"x0": "sum_ab.cout", "x1": "sum_cd.cout", "x2": "cmp.gt", "x3": "cmp.eq"},
    )
    return design


def run_composition() -> dict:
    design = build_design()
    for instance in design.instances:
        design.attach_model(
            instance.name,
            build_upper_bound_model(instance.netlist, max_nodes=400),
        )
    constant = design.constant_worst_case()
    rows = []
    for sp, st in ((0.5, 0.1), (0.5, 0.3), (0.5, 0.5), (0.3, 0.3), (0.7, 0.3)):
        sequence = markov_sequence(
            len(design.primary_inputs),
            bench_sequence_length(),
            sp=sp,
            st=st,
            seed=474,
        )
        golden = design.golden_capacitances(sequence)
        bound = design.estimated_capacitances(sequence)
        rows.append(
            {
                "sp": sp,
                "st": st,
                "true_mean": float(golden.mean()),
                "true_peak": float(golden.max()),
                "bound_mean": float(bound.mean()),
                "bound_peak": float(bound.max()),
                "violations": int(np.sum(bound < golden - 1e-9)),
            }
        )
    return {"constant": constant, "rows": rows}


def test_rtl_bound_composition(benchmark):
    result = benchmark.pedantic(run_composition, rounds=1, iterations=1)
    constant = result["constant"]
    body = [
        [
            r["sp"], r["st"],
            r["true_mean"], r["bound_mean"],
            r["true_peak"], r["bound_peak"],
            constant,
            round(constant / r["bound_peak"], 2),
        ]
        for r in result["rows"]
    ]
    text = (
        "E7 / RTL composition — per-cycle bounds on a 4-macro datapath (fF)\n"
        "constant bound = sum of per-macro worst cases (Sec. 1.2's strawman)\n\n"
        + ascii_table(
            ["sp", "st", "true mean", "bound mean", "true peak",
             "bound peak", "constant", "tightening x"],
            body,
            precision=1,
        )
    )
    path = write_result("rtl_composition", text)
    print("\n" + text + f"\n[written to {path}]")

    for r in result["rows"]:
        assert r["violations"] == 0
        assert r["bound_peak"] <= constant + 1e-9
        assert r["bound_mean"] >= r["true_mean"] - 1e-9
    # The pattern bound must be meaningfully tighter than the constant
    # bound at low activity — the paper's core composition claim.
    low_activity = result["rows"][0]
    assert constant / low_activity["bound_mean"] > 1.5
