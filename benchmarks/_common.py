"""Shared infrastructure for the benchmark harness.

Every experiment (DESIGN.md E1-E9) writes its regenerated table/figure to
``benchmarks/results/<experiment>.txt`` and returns the raw numbers, so
``pytest benchmarks/ --benchmark-only`` both times the pipeline and leaves
the paper-shaped artifacts on disk for EXPERIMENTS.md.

Environment knobs:

- ``REPRO_BENCH_QUICK=1``   — shrink sequences and skip the largest
  circuit (k2) for a fast smoke run;
- ``REPRO_BENCH_CIRCUITS``  — comma-separated circuit subset for the
  Table-1 experiments.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.circuits import PAPER_TABLE1, available_circuits, load_circuit
from repro.circuits.mcnc import SUGGESTED_MAX_NODES
from repro.eval import SweepConfig, compute_truth_runs, evaluate_models_on_runs
from repro.models import (
    ConstantModel,
    LinearModel,
    build_add_models_parallel,
    constant_bound_from_model,
    generate_training_data,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def bench_sequence_length() -> int:
    """Vectors per (sp, st) run; the paper used 10000."""
    return 600 if QUICK else 3000


def bench_circuits() -> List[str]:
    """Circuits included in the Table-1 experiments."""
    override = os.environ.get("REPRO_BENCH_CIRCUITS", "")
    if override:
        return [name.strip() for name in override.split(",") if name.strip()]
    names = available_circuits()
    if QUICK:
        names = [n for n in names if n not in ("k2",)]
    return names


def bench_sweep_config(seed: int = 71) -> SweepConfig:
    """The Section-4 protocol grid.

    The 0.05 point matters: it is where Fig. 7a shows the characterized
    baselines blowing past 100% error, and it dominates their ARE.
    """
    return SweepConfig(
        sp_values=(0.3, 0.5, 0.7),
        st_values=(0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
        sequence_length=bench_sequence_length(),
        seed=seed,
    )


def write_result(name: str, text: str) -> str:
    """Persist one experiment's table under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        if not text.endswith("\n"):
            handle.write("\n")
    return path


# ---------------------------------------------------------------------------
# Table-1 pipeline, shared between the average and bounds experiments.
# ---------------------------------------------------------------------------
_TABLE1_CACHE: Dict[str, dict] = {}


def table1_row(name: str) -> dict:
    """Full pipeline for one circuit: models, sweep, AREs, CPU times."""
    cached = _TABLE1_CACHE.get(name)
    if cached is not None:
        return cached
    netlist = load_circuit(name)
    avg_max, ub_max = SUGGESTED_MAX_NODES[name]
    training = generate_training_data(
        netlist, length=bench_sequence_length(), seed=5
    )
    # The avg and max models are independent Fig.-6 constructions over
    # the same netlist — build them in two worker processes.
    add_model, bound_model = build_add_models_parallel(
        [
            (netlist, {"max_nodes": avg_max}),
            (netlist, {"max_nodes": ub_max, "strategy": "max"}),
        ],
        processes=2,
    )
    models = {
        "Con": ConstantModel.characterize(netlist, training),
        "Lin": LinearModel.characterize(netlist, training),
        "ADD": add_model,
        "ADDmax": bound_model,
        "Conmax": constant_bound_from_model(bound_model),
    }
    runs = compute_truth_runs(netlist, bench_sweep_config())
    sweep = evaluate_models_on_runs(name, models, runs)
    row = {
        "name": name,
        "netlist": netlist,
        "paper": PAPER_TABLE1[name],
        "avg_max": avg_max,
        "ub_max": ub_max,
        "are_con": 100.0 * sweep.are_average("Con"),
        "are_lin": 100.0 * sweep.are_average("Lin"),
        "are_add": 100.0 * sweep.are_average("ADD"),
        "cpu_avg": add_model.report.cpu_seconds,
        "ub_are_con": 100.0 * sweep.are_maximum("Conmax"),
        "ub_are_add": 100.0 * sweep.are_maximum("ADDmax"),
        "cpu_ub": bound_model.report.cpu_seconds,
        "bound_violations": sweep.bound_violations("ADDmax"),
        "sweep": sweep,
    }
    _TABLE1_CACHE[name] = row
    return row
