"""E14 — write-ahead log throughput: the price of fsync durability.

The control plane journals every state transition before acking
(``src/repro/serve/wal.py``).  The append path's cost is one frame
write + flush, plus — in the default durable configuration — one
``fsync`` per record.  This experiment measures:

1. **Append throughput**, fsync on vs off, for queue-sized records
   (~200 bytes): the fsync column is the per-transition floor of the
   durable queue; the no-fsync column is the page-cache ceiling.
2. **Compaction cost**: folding a 1000-record state into a snapshot.
3. **Recovery speed**: replaying a 1000-record tail from disk.

Artifacts: ``benchmarks/results/wal.txt``, the human-readable table
(this bench is hardware-bound, so no checked-in JSON baseline).

Run directly::

    PYTHONPATH=src python benchmarks/bench_wal.py

``REPRO_BENCH_QUICK=1`` shrinks the record counts.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from _common import QUICK, write_result

from repro.serve import WriteAheadLog

RECORDS = 200 if QUICK else 1000


def sample_record(index: int) -> dict:
    """A queue-shaped transition (~200 bytes on the wire)."""
    return {
        "op": "submit",
        "key": f"{index:064x}",
        "netlist": {"inputs": ["a", "b"], "outputs": ["y"], "seq": index},
        "config": {"max_nodes": 20000},
    }


def time_appends(directory: str, fsync: bool) -> float:
    wal = WriteAheadLog(directory, name="bench", fsync=fsync,
                        compact_every=10 * RECORDS)
    started = time.perf_counter()
    for index in range(RECORDS):
        wal.append(sample_record(index))
    elapsed = time.perf_counter() - started
    wal.close()
    return elapsed


def main() -> None:
    root = tempfile.mkdtemp(prefix="bench_wal_")
    try:
        durable_s = time_appends(os.path.join(root, "durable"), fsync=True)
        fast_s = time_appends(os.path.join(root, "fast"), fsync=False)

        # Compaction: fold RECORDS jobs of state into one snapshot.
        wal = WriteAheadLog(os.path.join(root, "fast"), name="bench",
                            fsync=False)
        wal.recover()
        state = {"jobs": [sample_record(i) for i in range(RECORDS)]}
        started = time.perf_counter()
        wal.compact(state)
        compact_s = time.perf_counter() - started
        wal.close()

        # Recovery: replay a full-length tail from a cold object.
        started = time.perf_counter()
        _, tail = WriteAheadLog(
            os.path.join(root, "durable"), name="bench"
        ).recover()
        recover_s = time.perf_counter() - started
        assert len(tail) == RECORDS, len(tail)
    finally:
        shutil.rmtree(root, ignore_errors=True)

    durable_rps = RECORDS / durable_s if durable_s > 0 else float("inf")
    fast_rps = RECORDS / fast_s if fast_s > 0 else float("inf")
    tail_rps = RECORDS / recover_s if recover_s > 0 else float("inf")
    lines = [
        "E14  write-ahead log throughput",
        f"records={RECORDS}  record_bytes~200",
        "",
        f"append, fsync on     {durable_s:8.3f} s   "
        f"({durable_rps:10.0f} rec/s)",
        f"append, fsync off    {fast_s:8.3f} s   "
        f"({fast_rps:10.0f} rec/s)",
        f"fsync cost           {durable_s / max(fast_s, 1e-9):8.1f} x",
        "",
        f"compact {RECORDS}-job state {compact_s:8.3f} s",
        f"replay {RECORDS}-record tail {recover_s:7.3f} s   "
        f"({tail_rps:10.0f} rec/s)",
    ]
    text = "\n".join(lines)
    print(text)
    path = write_result("wal", text)
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
