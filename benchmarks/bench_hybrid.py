"""E8 — hybrid model: analytical structural core + characterized residual.

Quantifies the Section-2 partition on a glitch-prone carry chain: the
zero-delay structural component (captured analytically, exactly) versus
the glitch component (characterized with a small residual regression).
Compares three estimators of glitch-aware power: the pure structural ADD,
a fully characterized linear model, and the hybrid.
"""

from __future__ import annotations

import numpy as np

from _common import write_result

from repro.circuits import ripple_adder
from repro.eval import ascii_table
from repro.models import HybridModel, LinearModel, build_add_model
from repro.models.characterize import TrainingData
from repro.sim import markov_sequence, sequence_glitch_capacitances

TRAIN_LENGTH = 400
TEST_POINTS = ((0.5, 0.5), (0.5, 0.4), (0.5, 0.25), (0.6, 0.5), (0.4, 0.4))


def run_hybrid() -> dict:
    netlist = ripple_adder(6, name="add6")
    structural = build_add_model(netlist, max_nodes=2000)
    hybrid = HybridModel.characterize(
        netlist, structural, training_length=TRAIN_LENGTH, seed=575
    )
    # A fully characterized linear model fitted on the SAME glitch-aware
    # training data (what a black-box flow would do).
    train_seq = markov_sequence(
        netlist.num_inputs, TRAIN_LENGTH, sp=0.5, st=0.5, seed=575
    )
    train_total = sequence_glitch_capacitances(netlist, train_seq)
    blackbox = LinearModel.characterize(
        netlist,
        TrainingData(train_seq[:-1], train_seq[1:], train_total),
    )

    rows = []
    for sp, st in TEST_POINTS:
        test = markov_sequence(netlist.num_inputs, 700, sp=sp, st=st, seed=676)
        truth = sequence_glitch_capacitances(netlist, test)
        mean_truth = truth.mean()

        def mean_error(model):
            return 100.0 * abs(
                model.sequence_capacitances(test).mean() - mean_truth
            ) / mean_truth

        rows.append(
            {
                "sp": sp,
                "st": st,
                "structural": mean_error(structural),
                "blackbox": mean_error(blackbox),
                "hybrid": mean_error(hybrid),
            }
        )
    return {"rows": rows, "netlist": netlist}


def test_hybrid_glitch_residual(benchmark):
    result = benchmark.pedantic(run_hybrid, rounds=1, iterations=1)
    rows = result["rows"]
    body = [
        [r["sp"], r["st"], r["structural"], r["blackbox"], r["hybrid"]]
        for r in rows
    ]
    text = (
        "E8 / hybrid — mean error (%) vs glitch-aware power, add6 carry chain\n"
        f"residual and black-box both characterized with {TRAIN_LENGTH} "
        "vectors at sp=st=0.5\n\n"
        + ascii_table(
            ["sp", "st", "pure ADD %", "black-box Lin %", "hybrid %"], body
        )
    )
    path = write_result("hybrid_glitch", text)
    print("\n" + text + f"\n[written to {path}]")

    # The hybrid must recover most of the structural model's glitch bias
    # at (and near) the characterization point.
    at_train = rows[0]
    assert at_train["hybrid"] < 0.3 * at_train["structural"]
    # And on average across the tested points it should not be worse than
    # the fully characterized black box.
    mean_hybrid = np.mean([r["hybrid"] for r in rows])
    mean_blackbox = np.mean([r["blackbox"] for r in rows])
    assert mean_hybrid <= mean_blackbox * 1.25
