"""E10 (extension) — realistic correlated workloads.

The paper's out-of-sample argument uses random sequences with shifted
``(sp, st)``; real RTL traffic is worse — counters, address bursts and
one-hot control tokens have bit-level correlations no ``(sp, st)`` pair
describes.  This experiment drives the cm85 macro with such streams and
compares average-power estimates from the characterized baselines
(trained, as in the paper, on random sp = st = 0.5 data) against the
analytical ADD model.

Expected shape: the *exact* ADD model has zero error on every workload —
per-pattern exactness makes input statistics irrelevant — while Con and
Lin drift far off.  A compressed ADD model sits in between: node
collapsing reintroduces a mild statistics sensitivity, quantified here.
"""

from __future__ import annotations

import numpy as np

from _common import bench_sequence_length, write_result

from repro.circuits import load_circuit
from repro.circuits.mcnc import SUGGESTED_MAX_NODES
from repro.eval import ascii_table, relative_error
from repro.models import (
    ConstantModel,
    LinearModel,
    build_add_model,
    generate_training_data,
)
from repro.sim import (
    address_burst_sequence,
    counter_sequence,
    gray_sequence,
    onehot_rotation_sequence,
    sequence_switching_capacitances,
)

CIRCUIT = "cm85"


def workloads(num_inputs: int, length: int) -> dict:
    return {
        "counter": counter_sequence(num_inputs, length),
        "counter+3": counter_sequence(num_inputs, length, stride=3),
        "addr burst": address_burst_sequence(num_inputs, length, seed=10),
        "gray walk": gray_sequence(num_inputs, length),
        "one-hot": onehot_rotation_sequence(num_inputs, length),
    }


def run_workloads() -> list:
    netlist = load_circuit(CIRCUIT)
    training = generate_training_data(
        netlist, length=bench_sequence_length(), seed=5
    )
    models = {
        "Con": ConstantModel.characterize(netlist, training),
        "Lin": LinearModel.characterize(netlist, training),
        "ADD": build_add_model(netlist),  # exact: feasible for cm85
        "ADD/1000": build_add_model(
            netlist, max_nodes=SUGGESTED_MAX_NODES[CIRCUIT][0]
        ),
    }
    rows = []
    for label, sequence in workloads(
        netlist.num_inputs, bench_sequence_length()
    ).items():
        golden = float(
            np.mean(sequence_switching_capacitances(netlist, sequence))
        )
        errors = {
            name: 100.0 * relative_error(
                model.average_capacitance(sequence), golden
            )
            for name, model in models.items()
        }
        rows.append(
            {"workload": label, "golden_fF": golden, "errors": errors}
        )
    return rows


def test_realistic_workloads(benchmark):
    rows = benchmark.pedantic(run_workloads, rounds=1, iterations=1)
    body = [
        [
            r["workload"],
            r["golden_fF"],
            r["errors"]["Con"],
            r["errors"]["Lin"],
            r["errors"]["ADD"],
            r["errors"]["ADD/1000"],
        ]
        for r in rows
    ]
    text = (
        f"E10 / extension — correlated workloads on {CIRCUIT}\n"
        "(average-power relative error %; Con/Lin characterized on random "
        "sp=st=0.5 data)\n\n"
        + ascii_table(
            ["workload", "true avg fF", "Con %", "Lin %", "ADD exact %",
             "ADD/1000 %"],
            body,
        )
    )
    path = write_result("workloads", text)
    print("\n" + text + f"\n[written to {path}]")

    for r in rows:
        # The exact analytical model is workload-proof: zero error on any
        # stream, however correlated (it never saw statistics at all).
        assert r["errors"]["ADD"] < 1e-6, r["workload"]
        # The compressed model must still dominate the constant baseline.
        assert r["errors"]["ADD/1000"] <= r["errors"]["Con"] + 1e-9, r["workload"]
    mean_small = np.mean([r["errors"]["ADD/1000"] for r in rows])
    mean_con = np.mean([r["errors"]["Con"] for r in rows])
    assert mean_small < 0.7 * mean_con
