"""E4 — Table 1, columns 9-12: conservative upper-bound accuracy.

Regenerates the right half of the paper's Table 1: the ARE on
maximum-power estimates of the constant bound (the global maximum of the
pattern-dependent ADD bound, reported for every run) versus the
pattern-dependent ADD bound itself, plus the bound model's MAX and build
CPU.  Also asserts the defining property: zero conservatism violations.
"""

from __future__ import annotations

from _common import bench_circuits, table1_row, write_result

from repro.eval import ascii_table


def run_bounds_table() -> list:
    return [table1_row(name) for name in bench_circuits()]


def test_table1_upper_bounds(benchmark):
    rows = benchmark.pedantic(run_bounds_table, rounds=1, iterations=1)
    headers = [
        "circuit", "n",
        "Con%", "ADD%", "MAX", "CPU(s)", "violations",
        "paper:Con%", "paper:ADD%",
    ]
    body = []
    for row in rows:
        paper = row["paper"]
        body.append([
            row["name"], row["netlist"].num_inputs,
            row["ub_are_con"], row["ub_are_add"],
            row["ub_max"], round(row["cpu_ub"], 1),
            row["bound_violations"],
            paper.ub_are_con_percent, paper.ub_are_add_percent,
        ])
    text = (
        "E4 / Table 1 (upper bounds) — ARE on maximum-power estimates,\n"
        "measured vs paper (Con = constant bound from the ADD's global max)\n\n"
        + ascii_table(headers, body)
    )
    path = write_result("table1_bounds", text)
    print("\n" + text + f"\n[written to {path}]")

    for row in rows:
        # Conservatism is non-negotiable: a violated bound is a bug.
        assert row["bound_violations"] == 0, row["name"]
        # The pattern-dependent bound is at least as tight as the constant
        # bound (strictly better on every paper row).
        assert row["ub_are_add"] <= row["ub_are_con"] + 1e-9, row["name"]
    mean_add = sum(r["ub_are_add"] for r in rows) / len(rows)
    mean_con = sum(r["ub_are_con"] for r in rows) / len(rows)
    assert mean_add < mean_con
