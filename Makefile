PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-eval bench-smoke bench-serving fuzz fuzz-smoke \
	stats-smoke serve-smoke chaos-smoke cluster-smoke obs-cluster-smoke \
	queue-smoke recovery-smoke

test:
	$(PYTHON) -m pytest -x -q

# Differential fuzzing against the independent oracle (default budget).
fuzz:
	$(PYTHON) -m repro fuzz --seed 0 --iterations 200 \
		--save-failures tests/corpus

# CI smoke: replay the full regression corpus, then a 60-second fuzz run.
fuzz-smoke:
	$(PYTHON) -m repro fuzz --corpus tests/corpus
	$(PYTHON) -m repro fuzz --seed 0 --iterations 10000 --time-budget 60

# Telemetry smoke: run `repro stats` on a small macro, then validate the
# trace/metrics artifacts it produced (schema + required instruments).
stats-smoke:
	$(PYTHON) -m repro stats decod \
		--trace /tmp/repro-stats-trace.json \
		--metrics /tmp/repro-stats-metrics.json
	$(PYTHON) scripts/check_obs_artifacts.py \
		/tmp/repro-stats-trace.json /tmp/repro-stats-metrics.json

# Serving smoke: server on an ephemeral port, batched queries through the
# TCP client, telemetry-counter assertions (store build/hit, batching).
serve-smoke:
	$(PYTHON) scripts/serve_smoke.py

# Chaos smoke: faults armed at every pipeline site (worker crash, torn
# manifest, connection resets, slow eval) — the build/store/serve round
# trip must stay oracle-correct, then the chaos-marked pytest suite runs.
chaos-smoke:
	$(PYTHON) scripts/chaos_smoke.py
	$(PYTHON) -m pytest -q -m chaos tests/test_faults.py

# Cluster smoke: 2-shard cluster on ephemeral ports, shard-aware load,
# metric aggregation check, one hard-kill failover, clean shutdown —
# then the chaos-marked cluster pytest suite.
cluster-smoke:
	$(PYTHON) scripts/cluster_smoke.py
	$(PYTHON) -m pytest -q -m chaos tests/test_cluster.py

# Observability smoke: traced 2-shard cluster with a live Prometheus
# endpoint — merged Chrome timeline must contain the full client ->
# router -> shard -> kernel span chain for one trace id across three
# processes, and the /metrics page must expose per-shard counters.
obs-cluster-smoke:
	$(PYTHON) scripts/obs_cluster_smoke.py

# Build-queue smoke: object store + queue + 4-worker farm on ephemeral
# ports, one SIGKILL mid-build — lease reassignment must finish every
# job with exactly-once publishes and a hash-verified store sync — then
# the chaos-marked queue pytest suite.
queue-smoke:
	$(PYTHON) scripts/queue_smoke.py
	$(PYTHON) -m pytest -q -m chaos tests/test_queue.py

# Recovery smoke: WAL-backed queue under a Supervisor, SIGKILL the
# *server* mid-build — supervised restart + journal replay must finish
# every job with zero duplicate publishes (verified by an offline WAL
# audit) — then the chaos-marked supervised-recovery pytest suite
# (including the double-kill-during-replay drill).
recovery-smoke:
	$(PYTHON) scripts/recovery_smoke.py
	$(PYTHON) -m pytest -q -m chaos tests/test_recovery.py

# Full benchmark suite (pytest-benchmark experiments E1-E9).
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate BENCH_eval_throughput.json at the repo root (E10, ~2 min).
bench-eval:
	$(PYTHON) benchmarks/bench_eval_throughput.py

# Regenerate BENCH_serving.json at the repo root (E11, ~1 min).
bench-serving:
	cd benchmarks && PYTHONPATH=../src $(PYTHON) bench_serving.py

# ~10-second throughput smoke run; leaves the checked-in JSON untouched.
# Runs through the pytest entry so the backend assertions apply: every
# backend bit-for-bit vs the scalar walk, and bit-parallel beating the
# levelized kernel on at least one circuit.
bench-smoke:
	REPRO_BENCH_QUICK=1 $(PYTHON) -m pytest benchmarks/bench_eval_throughput.py -q
