"""End-to-end smoke of the sharded serving tier, for ``make cluster-smoke``.

Starts a 2-shard cluster (forked workers, control-plane router) on
ephemeral ports, and requires that:

- the ring places the model on both shards and shard-aware load
  completes with zero errors;
- the router's ``cluster_stats`` aggregation equals the sum of the
  per-shard ``serve.requests`` counters;
- one shard hard-killed mid-run triggers a failover: ring version
  bumps, ``serve.cluster.shard_deaths``/``serve.cluster.failovers``
  increment, and load against the survivor still sees zero errors;
- ``stop()`` leaves no live worker processes behind (clean shutdown).

Exits non-zero with a one-line reason on the first violation.

Usage::

    PYTHONPATH=src python scripts/cluster_smoke.py
"""

from __future__ import annotations

import sys
import time

from repro.netlist import NetlistBuilder
from repro.models import build_add_model
from repro.serve import (
    Cluster,
    ClusterClient,
    ClusterConfig,
    ServerConfig,
    generate_cluster_load,
)

CLIENTS = 8
REQUESTS_PER_CLIENT = 15


def fail(message: str) -> None:
    print(f"cluster_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def make_model(name: str = "quad"):
    builder = NetlistBuilder(name)
    a, b, c, d = (builder.input(ch) for ch in "abcd")
    builder.netlist.add_output(
        builder.or2(builder.and2(a, b), builder.xor2(c, d))
    )
    return build_add_model(builder.build(), max_nodes=200)


def main() -> None:
    transitions = [("0000", "1111"), ("0011", "1100"), ("0101", "0110")]
    cluster = Cluster(
        {"quad": make_model()},
        ClusterConfig(
            workers=2,
            replication=2,
            monitor_interval_s=0.02,
            server=ServerConfig(max_batch=16, max_wait_ms=0.5),
        ),
    ).start()
    try:
        client = ClusterClient(cluster.host, cluster.router_port)
        ring = client.ring()
        if sorted(ring["shards"]) != ["s0", "s1"]:
            fail(f"expected shards s0+s1 on the ring, got {ring['shards']}")
        if sorted(ring["placement"]["quad"]) != ["s0", "s1"]:
            fail(f"model not replicated across both shards: {ring['placement']}")

        report = generate_cluster_load(
            cluster.host,
            cluster.router_port,
            "quad",
            transitions,
            clients=CLIENTS,
            requests_per_client=REQUESTS_PER_CLIENT,
        )
        if report.errors:
            fail(f"clean load saw {report.errors} errors")

        stats = client.cluster_stats()
        merged = stats["metrics"]["serve.requests"]["value"]
        per_shard = sum(
            info.get("requests", 0) for info in stats["shards"].values()
        )
        if merged != per_shard:
            fail(
                f"aggregated serve.requests {merged} != "
                f"sum of per-shard counters {per_shard}"
            )
        if merged < CLIENTS * REQUESTS_PER_CLIENT:
            fail(f"cluster answered only {merged} requests")

        # One failover: hard-kill a shard, wait for the monitor to
        # rebalance, and require the survivor to carry the load alone.
        version = cluster.ring_version
        cluster.kill_shard("s0")
        deadline = time.time() + 10.0
        while cluster.ring_version == version:
            if time.time() > deadline:
                fail("ring version never bumped after the kill")
            time.sleep(0.02)
        report = generate_cluster_load(
            cluster.host,
            cluster.router_port,
            "quad",
            transitions,
            clients=CLIENTS,
            requests_per_client=REQUESTS_PER_CLIENT,
        )
        if report.errors:
            fail(f"post-failover load saw {report.errors} errors")
        stats = client.cluster_stats()
        router = {
            name: state["value"]
            for name, state in stats["router_metrics"].items()
        }
        if router.get("serve.cluster.shard_deaths", 0) < 1:
            fail("shard death never counted")
        if router.get("serve.cluster.failovers", 0) < 1:
            fail("failover never counted")
        health = client.healthz()
        if health["status"] != "ok":
            fail(f"cluster degraded after failover: {health['status']}")
        if health["shards"]["s0"]["alive"]:
            fail("killed shard still reported alive")
        client.close()
    finally:
        cluster.stop()

    for handle in cluster._shards.values():
        if handle.alive():
            fail(f"worker {handle.shard_id} survived stop()")

    print(
        "cluster_smoke: OK "
        f"(2 shards, {2 * CLIENTS * REQUESTS_PER_CLIENT} requests, "
        "1 failover, 0 errors, clean shutdown)"
    )


if __name__ == "__main__":
    main()
