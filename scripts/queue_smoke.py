"""End-to-end smoke of the distributed build pipeline, for ``make queue-smoke``.

Starts an in-memory object store and a build-queue server on ephemeral
ports, points a 4-worker farm at them, and requires that:

- 8 distinct build jobs submitted through the queue all complete, with
  dedupe assigning 8 distinct content keys;
- one worker hard-killed (SIGKILL) mid-build triggers a lease expiry
  and reassignment — every job still reaches ``done`` and the server
  registers **zero duplicate publishes**;
- every model resolves from the shared object backend with its source
  hash intact (zero client-visible errors);
- the backend holds exactly one object per key, and ``sync_stores`` to
  a fresh local backend copies all 8 with every content hash verified.

Exits non-zero with a one-line reason on the first violation.

Usage::

    PYTHONPATH=src python scripts/queue_smoke.py
"""

from __future__ import annotations

import os
import signal
import sys
import time

from repro.netlist import NetlistBuilder
from repro.obs import get_metrics
from repro.serve import (
    BuildQueueClient,
    ModelStore,
    ObjectStoreConfig,
    QueueConfig,
    WorkerFarm,
    open_backend,
    start_object_store,
    start_queue,
    sync_stores,
)

JOBS = 8
WORKERS = 4


def fail(message: str) -> None:
    print(f"queue_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def counter(name: str) -> float:
    return get_metrics().counter(name).value


def make_netlist(index: int):
    builder = NetlistBuilder(f"smoke{index}")
    a, b = builder.input("a"), builder.input("b")
    net = builder.nand2(a, b)
    for step in range(index + 1):
        other = builder.xor2(a, b) if step % 2 else builder.nand2(b, a)
        net = builder.nor2(net, other)
    builder.output("y", net)
    return builder.build()


def main() -> None:
    netlists = [make_netlist(i) for i in range(JOBS)]
    with start_object_store(ObjectStoreConfig()) as obj:
        store = ModelStore(open_backend(obj.spec))
        with start_queue(
            QueueConfig(lease_s=1.0, sweep_interval_s=0.1, max_attempts=4)
        ) as queue:
            with WorkerFarm(
                queue.host, queue.port, obj.spec,
                count=WORKERS, build_delay_s=0.4,
            ) as farm:
                with BuildQueueClient(queue.host, queue.port) as client:
                    keys = [client.submit(n)["key"] for n in netlists]
                    if len(set(keys)) != JOBS:
                        fail(f"expected {JOBS} distinct keys, got {keys}")

                    # Chaos: hard-kill one worker mid-build. The queue
                    # must reassign its lease and finish everything.
                    time.sleep(0.2)
                    victim = farm.processes[0]
                    os.kill(victim.pid, signal.SIGKILL)
                    victim.join(5.0)
                    if victim.is_alive():
                        fail("victim worker survived SIGKILL")

                    dup_before = counter("queue.publishes.duplicate")
                    for key in keys:
                        state = client.wait(key, timeout_s=60.0)
                        if state["state"] != "done":
                            fail(f"job {key} ended {state['state']}: "
                                 f"{state.get('error')}")
                    stats = client.stats()
                    if stats["jobs"].get("done") != JOBS:
                        fail(f"queue reports {stats['jobs']} after the run")
                    if counter("queue.publishes.duplicate") != dup_before:
                        fail("duplicate publish registered server-side")
                    if counter("queue.leases.expired") < 1:
                        fail("SIGKILL never expired a lease")

            # Zero client-visible errors: every model resolves from the
            # shared backend with its provenance intact.
            for netlist, key in zip(netlists, keys):
                model = store.get(key)
                if model is None:
                    fail(f"model {key} missing from the object backend")
                if model.source_hash != netlist.content_hash():
                    fail(f"model {key} built from the wrong netlist")

        # Exactly one object per key, then a hash-verified replication
        # to a fresh local backend.
        names = store.backend.list("objects/")
        if sorted(names) != sorted(f"objects/{k}.json" for k in set(keys)):
            fail(f"backend holds unexpected objects: {names}")
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            report = sync_stores(store.backend, open_backend(tmp))
            if not report.ok or report.copied != JOBS or report.verified != JOBS:
                fail(f"sync degraded: {report.summary()}")

    print(
        "queue_smoke: OK "
        f"({JOBS} jobs, {WORKERS} workers, 1 SIGKILL, "
        "0 duplicate publishes, sync verified)"
    )


if __name__ == "__main__":
    main()
