"""End-to-end chaos smoke of the resilience layer, for ``make chaos-smoke``.

Arms a fault plan covering every pipeline stage — a worker that crashes
on its first attempt, a torn store-manifest write, injected connection
resets and a slowed kernel evaluation — then runs the full
build → store → serve → load round trip and requires that:

- ``get_or_build_many`` still returns every model (crash retried,
  ``build.worker.crashes``/``build.worker.retries`` > 0);
- served values match the independent differential oracle bit for bit;
- ``generate_load`` completes with zero errors (resets absorbed by the
  client retry policy, visible as retries/reconnects in the report);
- a fresh :class:`ModelStore` on the same directory recovers the torn
  manifest from ``objects/`` (``serve.store.manifest_recoveries`` > 0);
- every degradation left a trace in the telemetry counters.

Exits non-zero with a one-line reason on the first violation.

Usage::

    PYTHONPATH=src python scripts/chaos_smoke.py
"""

from __future__ import annotations

import shutil
import sys
import tempfile

from repro.netlist import NetlistBuilder
from repro.obs import get_metrics
from repro.serve import (
    ModelStore,
    PowerQueryClient,
    RetryPolicy,
    ServerConfig,
    generate_load,
    start_in_thread,
)
from repro.testing import faults
from repro.testing.oracle import oracle_switching_capacitance

CLIENTS = 8
REQUESTS_PER_CLIENT = 15


def fail(message: str) -> None:
    print(f"chaos_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def make_netlist(name: str, variant: int):
    builder = NetlistBuilder(name)
    a, b, c, d = (builder.input(ch) for ch in "abcd")
    combine = builder.or2 if variant == 0 else builder.and2
    builder.netlist.add_output(
        combine(builder.and2(a, b), builder.xor2(c, d))
    )
    return builder.build()


def counter(name: str) -> int:
    return int(get_metrics().counter(name).value)


def main() -> None:
    netlists = {
        "alpha": make_netlist("alpha", 0),
        "beta": make_netlist("beta", 1),
    }
    plan = [
        # Every first worker attempt dies; the supervisor must retry.
        faults.FaultSpec("build.worker.crash", max_token=1),
        # The write after the first object write — the manifest — tears.
        faults.FaultSpec("store.torn_write", times=1, after=1),
        # A few requests lose their connection mid-flight.
        faults.FaultSpec("serve.connection.reset", times=3),
        # One batch evaluation stalls.
        faults.FaultSpec("serve.eval.slow", delay_s=0.02, times=1),
    ]
    store_dir = tempfile.mkdtemp(prefix="repro-chaos-smoke-")
    try:
        with faults.inject(plan, seed=11):
            store = ModelStore(store_dir)
            models = store.get_or_build_many(
                [(n, {"max_nodes": 200}) for n in netlists.values()],
                processes=2,
                job_timeout_s=120.0,
                max_retries=2,
            )
            if len(models) != len(netlists):
                fail(f"built {len(models)} models, expected {len(netlists)}")
            if counter("build.worker.crashes") < 1:
                fail("injected worker crash never registered")
            if counter("build.worker.retries") < 1:
                fail("crashed job was not retried")

            handle = start_in_thread(
                dict(zip(netlists, models)),
                ServerConfig(max_batch=16, max_wait_ms=1.0),
            )
            try:
                client = PowerQueryClient(
                    handle.host,
                    handle.port,
                    timeout=10.0,
                    retry=RetryPolicy(base_delay_s=0.01),
                    rng_seed=5,
                )
                transitions = [
                    ("0000", "1111"),
                    ("1010", "0101"),
                    ("0011", "1100"),
                    ("0110", "1001"),
                ]
                try:
                    for name, netlist in netlists.items():
                        for initial, final in transitions:
                            served = client.evaluate(name, initial, final)
                            expect = oracle_switching_capacitance(
                                netlist,
                                [int(b) for b in initial],
                                [int(b) for b in final],
                            )
                            if abs(served - expect) > 1e-9:
                                fail(
                                    f"{name} {initial}->{final}: served "
                                    f"{served} != oracle {expect}"
                                )
                finally:
                    client.close()
                report = generate_load(
                    handle.host,
                    handle.port,
                    "alpha",
                    transitions,
                    clients=CLIENTS,
                    requests_per_client=REQUESTS_PER_CLIENT,
                )
            finally:
                handle.stop()
            if report.errors:
                fail(
                    f"{report.errors} of {report.requests} load requests "
                    f"errored despite the retry policy"
                )
            if counter("faults.injected.serve.connection.reset") < 1:
                fail("injected connection resets never fired")

        # Cold reload outside the fault plan: the torn manifest must
        # reconcile from objects/ and serve both models from disk.
        fresh = ModelStore(store_dir)
        if len(fresh.ls()) != len(netlists):
            fail(
                f"reloaded store lists {len(fresh.ls())} entries, "
                f"expected {len(netlists)}"
            )
        if counter("serve.store.manifest_recoveries") < 1:
            fail("torn manifest was never recovered")
        for name, netlist in netlists.items():
            if fresh.get(fresh.key_for(netlist, max_nodes=200)) is None:
                fail(f"reloaded store is missing {name}")
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    reconnects = report.reconnects + counter("serve.client.reconnects")
    print(
        f"chaos_smoke: OK — {report.requests} requests, 0 errors, "
        f"{reconnects} reconnects after injected resets, "
        f"{counter('build.worker.crashes')} worker crashes absorbed, "
        f"{counter('serve.store.manifest_recoveries')} manifest recoveries"
    )


if __name__ == "__main__":
    main()
