"""End-to-end smoke of cluster observability, for ``make obs-cluster-smoke``.

Starts a 2-shard cluster with tracing enabled and a Prometheus endpoint
on an ephemeral port, drives traced load through it, and requires that:

- the load report carries a trace id and zero errors;
- the Prometheus page exposes per-shard ``serve_requests_total`` series,
  ``up`` gauges for both shards, and the router's unlabeled
  ``serve_cluster_*`` series;
- after shutdown, every surviving process exported a Chrome trace file,
  and the merged timeline (``merge_chrome_traces``) for the load run's
  trace id contains the full client -> router -> shard -> kernel span
  chain across at least three processes, with rebased, sorted,
  non-negative timestamps;
- the ``repro trace-merge`` CLI produces the same merged artifact.

Exits non-zero with a one-line reason on the first violation.

Usage::

    PYTHONPATH=src python scripts/obs_cluster_smoke.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import urllib.request
from pathlib import Path

from repro.netlist import NetlistBuilder
from repro.models import build_add_model
from repro.obs import disable_tracing, enable_tracing, merge_chrome_traces
from repro.serve import (
    Cluster,
    ClusterClient,
    ClusterConfig,
    ServerConfig,
    generate_cluster_load,
)

CLIENTS = 8
REQUESTS_PER_CLIENT = 15

#: The span chain the merged timeline must contain for the load trace.
REQUIRED_SPANS = {
    "serve.client.request",  # client attempt (parent process)
    "router.request",  # control-plane hop (parent process)
    "serve.request",  # shard ingress (worker process)
    "serve.eval",  # kernel batch evaluation (worker process)
}


def fail(message: str) -> None:
    print(f"obs_cluster_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def make_model(name: str = "quad"):
    builder = NetlistBuilder(name)
    a, b, c, d = (builder.input(ch) for ch in "abcd")
    builder.netlist.add_output(
        builder.or2(builder.and2(a, b), builder.xor2(c, d))
    )
    return build_add_model(builder.build(), max_nodes=200)


def scrape(port: int) -> str:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/metrics", timeout=5.0
    ) as response:
        if response.status != 200:
            fail(f"/metrics answered {response.status}")
        content_type = response.headers.get("Content-Type", "")
        if not content_type.startswith("text/plain"):
            fail(f"/metrics Content-Type is {content_type!r}")
        return response.read().decode("utf-8")


def main() -> None:
    trace_dir = Path(tempfile.mkdtemp(prefix="repro-obs-smoke-"))
    transitions = [("0000", "1111"), ("0011", "1100"), ("0101", "0110")]
    enable_tracing()
    cluster = Cluster(
        {"quad": make_model()},
        ClusterConfig(
            workers=2,
            replication=2,
            monitor_interval_s=0.02,
            metrics_push_interval_s=0.1,
            prometheus_port=0,
            server=ServerConfig(
                max_batch=16, max_wait_ms=0.5, trace_dir=str(trace_dir)
            ),
        ),
    ).start()
    try:
        if not cluster.prometheus_port:
            fail("prometheus endpoint did not start")

        report = generate_cluster_load(
            cluster.host,
            cluster.router_port,
            "quad",
            transitions,
            clients=CLIENTS,
            requests_per_client=REQUESTS_PER_CLIENT,
        )
        if report.errors:
            fail(f"traced load saw {report.errors} errors")
        if not report.trace_id:
            fail("load report carries no trace id despite tracing enabled")

        # cluster_stats forces a fresh push from every shard, so the next
        # scrape reflects all the load just generated.
        with ClusterClient(cluster.host, cluster.router_port) as client:
            stats = client.cluster_stats()
        page = scrape(cluster.prometheus_port)
        for needle in (
            "# TYPE serve_requests_total counter",
            'serve_requests_total{shard="s0"}',
            'serve_requests_total{shard="s1"}',
            'up{shard="s0"} 1',
            'up{shard="s1"} 1',
            "serve_cluster_shards 2",
        ):
            if needle not in page:
                fail(f"prometheus page is missing {needle!r}")
        exported = sum(
            int(line.rsplit(" ", 1)[1])
            for line in page.splitlines()
            if line.startswith("serve_requests_total{")
        )
        merged = stats["metrics"]["serve.requests"]["value"]
        if exported < merged:
            fail(
                f"prometheus serve_requests_total {exported} lags "
                f"cluster_stats aggregate {merged}"
            )
    finally:
        cluster.stop()
        disable_tracing()

    # Graceful stop: 2 workers + the router/client parent each dumped a
    # trace file.
    files = sorted(trace_dir.glob("trace-*.json"))
    if len(files) != 3:
        fail(f"expected 3 trace files after shutdown, found {len(files)}")
    payloads = [json.loads(path.read_text()) for path in files]
    timeline = merge_chrome_traces(payloads, trace_id=report.trace_id)
    events = timeline["traceEvents"]
    if not events:
        fail(f"merged timeline for trace {report.trace_id} is empty")
    names = {event["name"] for event in events}
    missing = REQUIRED_SPANS - names
    if missing:
        fail(f"merged timeline is missing spans {sorted(missing)}")
    pids = {event["pid"] for event in events}
    if len(pids) < 3:
        fail(f"merged timeline spans only {len(pids)} processes")
    timestamps = [event["ts"] for event in events]
    if min(timestamps) < 0.0:
        fail("merged timeline has negative (pre-origin) timestamps")
    if timestamps != sorted(timestamps):
        fail("merged timeline events are not time-ordered")

    # The CLI must produce the same artifact from the same inputs.
    merged_path = trace_dir / "merged_trace.json"
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "trace-merge",
            str(trace_dir),
            "--trace-id",
            report.trace_id,
            "-o",
            str(merged_path),
        ],
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        fail(f"repro trace-merge exited {result.returncode}: {result.stderr}")
    cli_timeline = json.loads(merged_path.read_text())
    if cli_timeline["traceEvents"] != events:
        fail("CLI trace-merge output differs from in-process merge")

    print(
        "obs_cluster_smoke: OK "
        f"(trace {report.trace_id}: {len(events)} events across "
        f"{len(pids)} processes; prometheus exported "
        f"{exported} requests)"
    )


if __name__ == "__main__":
    main()
