"""Validate the telemetry artifacts produced by ``repro stats``.

Used by ``make stats-smoke`` and CI: runs the full ``repro stats``
pipeline on a small macro with ``--trace`` / ``--metrics``, then checks
that both files parse and carry the schema and instruments the rest of
the tooling (Perfetto, the benchmark reports, the tests) relies on.

Exits non-zero with a one-line reason on the first violation.

Usage::

    PYTHONPATH=src python scripts/check_obs_artifacts.py TRACE.json METRICS.json
"""

from __future__ import annotations

import json
import sys

#: Instrument-name prefixes a `repro stats` run must have populated.
REQUIRED_PREFIXES = ("dd.apply.", "add.build.", "compiled.eval.", "sim.")

#: Span names the Chrome trace of a stats run must contain.
REQUIRED_SPANS = ("add.build", "symbolic.build", "sim.pairs")


def fail(message: str) -> "NoReturn":  # noqa: F821 - py<3.11 friendly
    print(f"check_obs_artifacts: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(path: str) -> int:
    try:
        with open(path, encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, ValueError) as exc:
        fail(f"cannot load trace {path}: {exc}")
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents")
    for event in events:
        for key in ("name", "ph", "ts", "dur", "pid", "tid"):
            if key not in event:
                fail(f"{path}: event missing {key!r}: {event}")
        if event["ph"] != "X":
            fail(f"{path}: unexpected phase {event['ph']!r}")
        if event["dur"] < 0 or not isinstance(event["ts"], (int, float)):
            fail(f"{path}: bad timestamps in {event}")
    names = {event["name"] for event in events}
    for span in REQUIRED_SPANS:
        if span not in names:
            fail(f"{path}: required span {span!r} absent (have {sorted(names)})")
    return len(events)


def check_metrics(path: str) -> int:
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        fail(f"cannot load metrics {path}: {exc}")
    if payload.get("format") != "repro-metrics" or payload.get("version") != 1:
        fail(f"{path}: bad format/version header")
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        fail(f"{path}: empty metrics map")
    for name, state in metrics.items():
        if state.get("type") not in ("counter", "gauge", "histogram"):
            fail(f"{path}: instrument {name!r} has bad type {state.get('type')!r}")
        if state["type"] == "histogram" and len(state["counts"]) != len(
            state["buckets"]
        ) + 1:
            fail(f"{path}: histogram {name!r} counts/buckets length mismatch")
    for prefix in REQUIRED_PREFIXES:
        populated = any(
            name.startswith(prefix)
            and (
                state.get("value") or state.get("count")
            )
            for name, state in metrics.items()
        )
        if not populated:
            fail(f"{path}: no populated instrument under {prefix!r}")
    return len(metrics)


def main(argv: list) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    trace_path, metrics_path = argv
    num_events = check_trace(trace_path)
    num_instruments = check_metrics(metrics_path)
    print(
        f"check_obs_artifacts: OK ({num_events} trace events, "
        f"{num_instruments} instruments)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
