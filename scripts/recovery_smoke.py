"""Crash-durability smoke of the control plane, for ``make recovery-smoke``.

Runs the acceptance drill for the WAL + supervisor layer: a build-queue
server journaling to a write-ahead log runs under a :class:`Supervisor`,
a 4-worker farm builds against it, and the server is **SIGKILLed
mid-build** with 8 jobs in flight.  The run requires that:

- the supervisor restarts the server and WAL replay recovers every job
  (in-flight leases re-enqueued, attempts intact);
- all 8 jobs complete with **zero duplicate publishes** and zero
  client-visible errors (the submitting client rides through the
  restart on its retry policy);
- every model resolves from the shared backend with its source hash
  intact;
- an offline replay of the journal confirms exactly-once publishes:
  at most one applied ``publish`` per key across the whole history.

Exits non-zero with a one-line reason on the first violation.

Usage::

    PYTHONPATH=src python scripts/recovery_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
import time

from repro.netlist import NetlistBuilder
from repro.obs import get_metrics
from repro.serve import (
    BuildQueueClient,
    ModelStore,
    QueueConfig,
    RetryPolicy,
    Supervisor,
    WorkerFarm,
    WriteAheadLog,
    open_backend,
)

JOBS = 8
WORKERS = 4


def fail(message: str) -> None:
    print(f"recovery_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def counter(name: str) -> float:
    return get_metrics().counter(name).value


def make_netlist(index: int):
    builder = NetlistBuilder(f"recover{index}")
    a, b = builder.input("a"), builder.input("b")
    net = builder.nand2(a, b)
    for step in range(index + 1):
        other = builder.xor2(a, b) if step % 2 else builder.nand2(b, a)
        net = builder.nor2(net, other)
    builder.output("y", net)
    return builder.build()


def replay_publish_counts(wal_dir: str) -> dict:
    """Offline audit: applied publishes per key across the WAL history.

    Counts a publish only when it lands on a not-yet-terminal job —
    the same idempotence rule the server applies — so a duplicate frame
    can never masquerade as a second accept.
    """
    state, tail = WriteAheadLog(wal_dir, name="queue").recover()
    states = {}
    counts = {}
    if state is not None:
        for job in state.get("jobs", []):
            states[job["key"]] = job.get("state", "pending")
            if job.get("state") == "done":
                counts[job["key"]] = 1
    for record in tail:
        key = record.get("key")
        if record.get("op") == "publish":
            if states.get(key) not in ("done", "failed"):
                counts[key] = counts.get(key, 0) + 1
                states[key] = "done"
        elif record.get("op") in ("submit", "resubmit", "claim", "expire"):
            states.setdefault(key, "pending")
    return counts


def main() -> None:
    netlists = [make_netlist(i) for i in range(JOBS)]
    with tempfile.TemporaryDirectory() as tmp:
        spec = f"{tmp}/shared"
        wal_dir = f"{tmp}/qwal"
        store = ModelStore(open_backend(spec))
        sup = Supervisor(backoff_base_s=0.05)
        sup.add_queue(
            QueueConfig(
                lease_s=2.0,
                sweep_interval_s=0.1,
                max_attempts=4,
                wal_dir=wal_dir,
            )
        )
        sup.start()
        try:
            host, port = sup.endpoint("queue")
            with WorkerFarm(host, port, spec, count=WORKERS,
                            build_delay_s=0.4):
                with BuildQueueClient(
                    host, port,
                    timeout=10.0,
                    breaker=False,
                    retry=RetryPolicy(max_attempts=12, base_delay_s=0.1,
                                      max_delay_s=0.5),
                ) as client:
                    keys = [client.submit(n)["key"] for n in netlists]
                    if len(set(keys)) != JOBS:
                        fail(f"expected {JOBS} distinct keys, got {keys}")

                    # Chaos: SIGKILL the queue *server* mid-build.  The
                    # supervisor must restart it and WAL replay must
                    # recover every job.
                    time.sleep(0.3)
                    sup.kill("queue")

                    for key in keys:
                        deadline = time.monotonic() + 90.0
                        state = None
                        while time.monotonic() < deadline:
                            state = client.wait(key, timeout_s=2.0)
                            if state["state"] in ("done", "failed"):
                                break
                        if state is None or state["state"] != "done":
                            fail(f"job {key} ended "
                                 f"{state and state['state']}: "
                                 f"{state and state.get('error')}")
                    stats = client.stats()
                    if stats["jobs"].get("done") != JOBS:
                        fail(f"queue reports {stats['jobs']} after the run")
                    if stats["duplicate_publishes"] != 0:
                        fail("duplicate publish registered server-side")
                    if stats.get("wal", {}).get("lsn", 0) < JOBS:
                        fail(f"suspiciously short journal: {stats.get('wal')}")
            restarts = sup.restarts("queue")
            if restarts < 1:
                fail("the SIGKILL never registered as a restart")
        finally:
            sup.stop()

        # Zero client-visible errors: every model resolves from the
        # shared backend with its provenance intact.
        for netlist, key in zip(netlists, keys):
            model = store.get(key)
            if model is None:
                fail(f"model {key} missing from the shared backend")
            if model.source_hash != netlist.content_hash():
                fail(f"model {key} built from the wrong netlist")

        # Offline WAL audit: at most one applied publish per key.
        counts = replay_publish_counts(wal_dir)
        doubled = {k: c for k, c in counts.items() if c > 1}
        if doubled:
            fail(f"journal shows multiply-applied publishes: {doubled}")

    print(
        "recovery_smoke: OK "
        f"({JOBS} jobs, {WORKERS} workers, 1 server SIGKILL, "
        f"{restarts} supervised restart(s), 0 duplicate publishes, "
        "WAL audit clean)"
    )


if __name__ == "__main__":
    main()
