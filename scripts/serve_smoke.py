"""End-to-end smoke test of the serving stack, for ``make serve-smoke``.

Starts a :class:`PowerQueryServer` on an ephemeral port (in-process, so
no orphaned children if anything dies), builds its model through a
throwaway :class:`ModelStore`, fires a burst of concurrent batched
queries through the real TCP client, and then asserts on the telemetry
counters the serving path is contractually required to populate:

- ``serve.store.builds`` == 1 and ``serve.store.disk_hits`` >= 1 (cold
  build, then a warm reload from the same directory);
- every request answered, none errored (``serve.requests`` vs
  ``serve.errors``);
- micro-batching actually merged requests (``serve.eval.batches`` <
  ``serve.eval.requests``);
- served values match a direct model evaluation bit for bit.

Exits non-zero with a one-line reason on the first violation.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import shutil
import sys
import tempfile

import numpy as np

from repro.circuits import load_circuit
from repro.obs import get_metrics
from repro.serve import (
    ModelStore,
    PowerQueryClient,
    ServerConfig,
    generate_load,
    start_in_thread,
)

MACRO = "decod"
CLIENTS = 16
REQUESTS_PER_CLIENT = 20


def fail(message: str) -> None:
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    registry = get_metrics()
    netlist = load_circuit(MACRO)
    store_dir = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    try:
        model = ModelStore(store_dir).get_or_build(netlist)
        # Warm reload: a fresh store on the same directory must hit disk.
        ModelStore(store_dir).get_or_build(netlist)
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)
    if registry.counter("serve.store.builds").value != 1:
        fail("expected exactly one store build")
    if registry.counter("serve.store.disk_hits").value < 1:
        fail("warm store reload did not register a disk hit")

    rng = np.random.default_rng(7)
    transitions = [
        (rng.random(netlist.num_inputs) < 0.5,
         rng.random(netlist.num_inputs) < 0.5)
        for _ in range(16)
    ]
    handle = start_in_thread(
        {MACRO: model}, ServerConfig(max_batch=64, max_wait_ms=1.0)
    )
    try:
        report = generate_load(
            handle.host, handle.port, MACRO, transitions,
            clients=CLIENTS, requests_per_client=REQUESTS_PER_CLIENT,
        )
        # Spot-check correctness over the wire against the direct model.
        with PowerQueryClient(handle.host, handle.port) as client:
            for initial, final in transitions[:4]:
                served = client.evaluate(MACRO, initial, final)
                direct = float(
                    model.pair_capacitances(
                        initial[np.newaxis], final[np.newaxis]
                    )[0]
                )
                if abs(served - direct) > 1e-9:
                    fail(f"served {served} != direct {direct}")
    finally:
        handle.stop()

    expected = CLIENTS * REQUESTS_PER_CLIENT
    if report.errors:
        fail(f"{report.errors} of {report.requests} load requests errored")
    if report.requests != expected:
        fail(f"load ran {report.requests} requests, expected {expected}")
    if registry.counter("serve.errors").value != 0:
        fail("server counted errors during a clean run")
    requests = registry.counter("serve.eval.requests").value
    batches = registry.counter("serve.eval.batches").value
    if requests < expected:
        fail(f"serve.eval.requests={requests} below the {expected} issued")
    if not 0 < batches < requests:
        fail(
            f"micro-batching never merged requests "
            f"(batches={batches}, requests={requests})"
        )
    print(
        f"serve_smoke: OK — {report.requests} requests, "
        f"{report.requests_per_sec:.0f} req/s, "
        f"{int(requests)} evals in {int(batches)} batches, "
        f"p99 {report.latency_p99_ms:.2f} ms"
    )


if __name__ == "__main__":
    main()
